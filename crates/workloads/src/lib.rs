//! `mtvar-workloads`: synthetic equivalents of the seven benchmarks studied
//! by *Variability in Architectural Simulations of Multi-Threaded Workloads*
//! (Alameldeen & Wood, HPCA 2003).
//!
//! The paper's binaries (IBM DB2 under a TPC-C-like load, Apache, SPECjbb,
//! Slashcode, ECperf, and SPLASH-2's Barnes-Hut and Ocean) are not
//! redistributable, so each is modeled as a [`profile::WorkloadProfile`]: a
//! multi-threaded transaction mix with the benchmark's concurrency structure
//! — thread counts, transaction-type mix, hot/cold/private footprints, lock
//! pools and hot locks, I/O waits, and deterministic behaviour drift over
//! time (phases, GC, heap growth). What the paper measures — run-to-run
//! variability of cycles per transaction — is a property of exactly this
//! structure, not of SQL or Java semantics.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), mtvar_sim::SimError> {
//! use mtvar_sim::{config::MachineConfig, machine::Machine};
//! use mtvar_workloads::Benchmark;
//!
//! let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
//! let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42))?;
//! let run = m.run_transactions(50)?;
//! assert_eq!(run.transactions, 50);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apache;
pub mod ecperf;
pub mod oltp;
pub mod profile;
pub mod regions;
pub mod scientific;
pub mod slashcode;
pub mod specjbb;

use profile::ProfiledWorkload;

/// The seven benchmarks of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPLASH-2 Barnes-Hut, 16K bodies.
    Barnes,
    /// SPLASH-2 Ocean, 514×514 grid.
    Ocean,
    /// ECperf 3-tier Java workload.
    Ecperf,
    /// Slashcode dynamic web serving.
    Slashcode,
    /// DB2 + TPC-C-like OLTP.
    Oltp,
    /// Apache static web serving.
    Apache,
    /// SPECjbb2000 Java server benchmark.
    Specjbb,
}

impl Benchmark {
    /// All benchmarks in the paper's Table 3 column order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Barnes,
        Benchmark::Ocean,
        Benchmark::Ecperf,
        Benchmark::Slashcode,
        Benchmark::Oltp,
        Benchmark::Apache,
        Benchmark::Specjbb,
    ];

    /// The benchmark's short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Ocean => "ocean",
            Benchmark::Ecperf => "ecperf",
            Benchmark::Slashcode => "slashcode",
            Benchmark::Oltp => "oltp",
            Benchmark::Apache => "apache",
            Benchmark::Specjbb => "specjbb",
        }
    }

    /// Instantiates the benchmark for a `cpus`-processor machine.
    pub fn workload(self, cpus: usize, seed: u64) -> ProfiledWorkload {
        match self {
            Benchmark::Barnes => scientific::barnes_workload(cpus, seed),
            Benchmark::Ocean => scientific::ocean_workload(cpus, seed),
            Benchmark::Ecperf => ecperf::workload(cpus, seed),
            Benchmark::Slashcode => slashcode::workload(cpus, seed),
            Benchmark::Oltp => oltp::workload(cpus, seed),
            Benchmark::Apache => apache::workload(cpus, seed),
            Benchmark::Specjbb => specjbb::workload(cpus, seed),
        }
    }

    /// The transaction count Table 3 measures for this benchmark. For the
    /// scientific workloads ("whole benchmark = 1 transaction") this returns
    /// the number of per-thread completions a `cpus`-processor run waits
    /// for, i.e. `cpus`.
    pub fn table3_transactions(self, cpus: usize) -> u64 {
        match self {
            Benchmark::Barnes | Benchmark::Ocean => cpus as u64,
            Benchmark::Ecperf => ecperf::TABLE3_TRANSACTIONS,
            Benchmark::Slashcode => slashcode::TABLE3_TRANSACTIONS,
            Benchmark::Oltp => oltp::TABLE3_TRANSACTIONS,
            Benchmark::Apache => apache::TABLE3_TRANSACTIONS,
            Benchmark::Specjbb => specjbb::TABLE3_TRANSACTIONS,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::workload::Workload;

    #[test]
    fn all_benchmarks_instantiate() {
        for b in Benchmark::ALL {
            let mut w = b.workload(4, 1);
            assert!(w.thread_count() > 0, "{b} has no threads");
            assert_eq!(w.name(), b.name());
            // Streams start without panicking.
            for i in 0..100 {
                let _ = w.next_op(ThreadId(i % w.thread_count() as u32));
            }
        }
    }

    #[test]
    fn table3_counts_match_paper() {
        assert_eq!(Benchmark::Barnes.table3_transactions(16), 16);
        assert_eq!(Benchmark::Ecperf.table3_transactions(16), 5);
        assert_eq!(Benchmark::Slashcode.table3_transactions(16), 30);
        assert_eq!(Benchmark::Oltp.table3_transactions(16), 1000);
        assert_eq!(Benchmark::Apache.table3_transactions(16), 5000);
        assert_eq!(Benchmark::Specjbb.table3_transactions(16), 60_000);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Oltp.to_string(), "oltp");
    }
}
