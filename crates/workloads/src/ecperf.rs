//! ECperf: a 3-tier Java (J2EE) order-entry/manufacturing workload.
//!
//! Long business transactions bounce between the application-server tier
//! and the database tier (modeled as I/O waits), with moderate lock
//! contention on entity beans. Table 3 measures only 5 transactions, so the
//! per-transaction length spread translates directly into run-to-run
//! variability (CoV 1.4%, range 5.3%).

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for ECperf.
pub const TABLE3_TRANSACTIONS: u64 = 5;

/// Application-server threads per processor.
pub const THREADS_PER_CPU: u32 = 2;

/// Builds the ECperf profile.
pub fn profile() -> WorkloadProfile {
    let base = TxnType {
        weight: 1,
        // ECperf business operations are audited for uniformity: fixed
        // segment structure, so commit arrivals are nearly periodic and the
        // 5-transaction Table 3 window stays tight.
        segments_mean: 20.0,
        segments_min: 18,
        segments_max: 22,
        mem_per_segment: 12,
        compute_mean: 70.0,
        hot_prob: 0.30,
        private_prob: 0.45, // bean instances and session state
        write_prob: 0.25,
        hot_write_factor: 0.2,
        reuse_prob: 0.55,
        dependent_prob: 0.40,
        lock_prob: 0.15,
        cs_mem_ops: 3,
        io_prob: 1.0, // tier crossings
        io_ns_mean: 40_000,
        io_fixed: false,
        branches_per_segment: 6,
        branch_bias: 0.88,
    };
    WorkloadProfile {
        name: "ecperf".into(),
        threads_per_cpu: THREADS_PER_CPU,
        txn_types: vec![
            // Order entry.
            TxnType { weight: 5, ..base },
            // Manufacturing (work orders).
            TxnType {
                weight: 3,
                segments_mean: 21.0,
                write_prob: 0.35,
                lock_prob: 0.15,
                ..base
            },
            // Browse/status queries.
            TxnType {
                weight: 2,
                segments_mean: 19.0,
                write_prob: 0.04,
                lock_prob: 0.1,
                ..base
            },
        ],
        hot_blocks: 12 * 1024,
        cold_blocks: 1_500_000,
        private_blocks: 16 * 1024,
        code_blocks_per_type: 32,
        lock_pool: 128,
        hot_locks: 3,
        hot_lock_prob: 0.15,
        phases: PhaseModel {
            period_txns: 200,
            amplitude: 0.2,
            gc_every: 120,
            gc_mem_ops: 1_200,
            growth_per_txn: 0.5,
            growth_cap_blocks: 40_000,
        },
        startup_stagger_instr: 0,
    }
}

/// Instantiates ECperf for a `cpus`-processor machine.
pub fn workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn long_transactions_with_tier_io() {
        let mut w = workload(4, 6);
        let threads = w.thread_count() as u32;
        let mut ios = 0;
        let mut txns = 0;
        for i in 0..60_000 {
            match w.next_op(ThreadId(i % threads)) {
                Op::Io(ns) => {
                    // Tier crossings are bounded bursts around the mean.
                    let mean = w.profile().txn_types[0].io_ns_mean;
                    assert!(ns >= 1 && ns <= mean * 3, "io {ns} outside burst bounds");
                    ios += 1;
                }
                Op::TxnEnd => txns += 1,
                _ => {}
            }
        }
        assert!(txns > 30);
        assert!(ios >= txns / 2, "every business operation crosses tiers");
    }
}
