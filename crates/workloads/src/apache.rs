//! Apache: static web content serving.
//!
//! Thousands of short GET requests per second: worker threads pull
//! connections off a shared accept queue (a hot lock), consult the shared
//! file/metadata cache (hot reads, few writes) and write responses (I/O).
//! A small CGI fraction adds heavier requests.

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for Apache.
pub const TABLE3_TRANSACTIONS: u64 = 5000;

/// Worker threads per processor.
pub const WORKERS_PER_CPU: u32 = 16;

/// Builds the Apache profile.
pub fn profile() -> WorkloadProfile {
    let get = TxnType {
        weight: 19,
        segments_mean: 2.0,
        segments_min: 1,
        segments_max: 8,
        mem_per_segment: 9,
        compute_mean: 35.0,
        hot_prob: 0.55, // shared file cache + metadata
        private_prob: 0.30,
        write_prob: 0.06,
        hot_write_factor: 0.15,
        reuse_prob: 0.5,
        dependent_prob: 0.30,
        lock_prob: 0.4, // accept queue / cache latch
        cs_mem_ops: 2,
        io_prob: 0.35, // socket write
        io_ns_mean: 25_000,
        io_fixed: false,
        branches_per_segment: 4,
        branch_bias: 0.92,
    };
    let cgi = TxnType {
        weight: 4,
        segments_mean: 14.0,
        segments_max: 80,
        mem_per_segment: 16,
        write_prob: 0.2,
        private_prob: 0.5,
        hot_prob: 0.3,
        io_prob: 0.5,
        io_ns_mean: 80_000,
        ..get
    };
    WorkloadProfile {
        name: "apache".into(),
        threads_per_cpu: WORKERS_PER_CPU,
        txn_types: vec![get, cgi],
        hot_blocks: 24 * 1024, // file cache working set
        cold_blocks: 2_000_000,
        private_blocks: 4 * 1024,
        code_blocks_per_type: 16,
        lock_pool: 64,
        hot_locks: 1, // the accept-queue lock
        hot_lock_prob: 0.3,
        phases: PhaseModel {
            period_txns: 1500,
            amplitude: 0.25,
            gc_every: 300,
            gc_mem_ops: 800,
            growth_per_txn: 0.0,
            growth_cap_blocks: 0,
        },
        startup_stagger_instr: 0,
    }
}

/// Instantiates Apache for a `cpus`-processor machine.
pub fn workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn short_transactions() {
        let mut w = workload(4, 2);
        let mut ops = 0u64;
        let mut txns = 0u64;
        for i in 0..30_000 {
            ops += 1;
            if let Op::TxnEnd = w.next_op(ThreadId(i % 32)) {
                txns += 1;
            }
        }
        assert!(txns > 100);
        let ops_per_txn = ops as f64 / txns as f64;
        assert!(
            ops_per_txn < 150.0,
            "Apache requests should be short, got {ops_per_txn} ops/txn"
        );
    }
}
