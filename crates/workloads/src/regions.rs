//! The address-region map shared by all workload generators.
//!
//! Block-granular addresses are partitioned into disjoint regions so code,
//! hot shared data (indices, metadata), cold shared data (bulk tables) and
//! per-thread private data never alias. Everything stays below the
//! simulator's lock region (`1 << 40`).

use mtvar_sim::ids::{BlockAddr, ThreadId};
use mtvar_sim::rng::Xoshiro256StarStar;

/// Base of the code region (per-workload function blocks).
pub const CODE_BASE: u64 = 0x0000_1000;
/// Base of the hot shared region.
pub const HOT_BASE: u64 = 0x1_0000_0000;
/// Base of the cold shared region.
pub const COLD_BASE: u64 = 0x2_0000_0000;
/// Base of the per-thread private region.
pub const PRIVATE_BASE: u64 = 0x10_0000_0000;
/// Span reserved per thread in the private region (blocks).
pub const PRIVATE_SPAN: u64 = 1 << 22;

/// Returns a hot-region address with a locality bias: squaring the uniform
/// draw concentrates ~75% of accesses on the first quarter of the region, a
/// cheap Zipf-like skew.
#[inline]
pub fn hot_addr(rng: &mut Xoshiro256StarStar, hot_blocks: u64) -> BlockAddr {
    let u = rng.next_f64();
    BlockAddr(HOT_BASE + ((u * u * hot_blocks as f64) as u64).min(hot_blocks - 1))
}

/// Returns a uniformly distributed cold-region address.
#[inline]
pub fn cold_addr(rng: &mut Xoshiro256StarStar, cold_blocks: u64) -> BlockAddr {
    BlockAddr(COLD_BASE + rng.next_below(cold_blocks))
}

/// Returns a biased private-region address for `thread`.
///
/// # Panics
///
/// Panics (debug) if `private_blocks` exceeds [`PRIVATE_SPAN`].
#[inline]
pub fn private_addr(
    rng: &mut Xoshiro256StarStar,
    thread: ThreadId,
    private_blocks: u64,
) -> BlockAddr {
    debug_assert!(private_blocks <= PRIVATE_SPAN);
    let u = rng.next_f64();
    let off = ((u * u * private_blocks as f64) as u64).min(private_blocks - 1);
    BlockAddr(PRIVATE_BASE + u64::from(thread.0) * PRIVATE_SPAN + off)
}

/// Returns the code block for function `func` of transaction type `ty`.
#[inline]
pub fn code_addr(ty: u32, func: u64, code_blocks_per_type: u64) -> BlockAddr {
    BlockAddr(CODE_BASE + u64::from(ty) * code_blocks_per_type + func % code_blocks_per_type)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..1000 {
            let h = hot_addr(&mut rng, 10_000).0;
            let c = cold_addr(&mut rng, 1 << 24).0;
            let p = private_addr(&mut rng, ThreadId(255), PRIVATE_SPAN).0;
            assert!((HOT_BASE..COLD_BASE).contains(&h));
            assert!((COLD_BASE..PRIVATE_BASE).contains(&c));
            assert!((PRIVATE_BASE..1 << 40).contains(&p));
        }
    }

    #[test]
    fn hot_region_is_skewed() {
        let mut rng = Xoshiro256StarStar::new(2);
        let n = 10_000u64;
        let in_first_quarter = (0..20_000)
            .filter(|_| hot_addr(&mut rng, n).0 - HOT_BASE < n / 4)
            .count();
        // sqrt(0.25) = 0.5 of draws land in the first quarter.
        assert!(in_first_quarter > 8_000, "{in_first_quarter}");
    }

    #[test]
    fn private_regions_do_not_alias_across_threads() {
        let mut rng = Xoshiro256StarStar::new(3);
        let a = private_addr(&mut rng, ThreadId(0), 100).0;
        let b = private_addr(&mut rng, ThreadId(1), 100).0;
        assert!(b - PRIVATE_BASE >= PRIVATE_SPAN);
        assert!(a - PRIVATE_BASE < PRIVATE_SPAN);
    }

    #[test]
    fn code_addr_separates_types() {
        let a = code_addr(0, 3, 8);
        let b = code_addr(1, 3, 8);
        assert_ne!(a, b);
        assert_eq!(code_addr(0, 11, 8), code_addr(0, 3, 8));
    }
}
