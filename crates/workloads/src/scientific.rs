//! The SPLASH-2 scientific benchmarks: Barnes-Hut (16K bodies) and Ocean
//! (514×514 grid).
//!
//! Both run one thread per processor over a fixed partition of the problem,
//! with a deterministic phase structure — compute-dominated work, mostly
//! private data, light read-sharing at partition boundaries, and no lock
//! contention to speak of. The whole benchmark counts as *one* transaction
//! in Table 3 (each thread commits once; the run completes at the last
//! commit), and their space variability is tiny (Barnes 0.16%, Ocean 0.31%).

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for Barnes and Ocean: the whole benchmark.
pub const TABLE3_TRANSACTIONS: u64 = 1;

fn scientific_profile(
    name: &str,
    segments: u32,
    mem_per_segment: u32,
    boundary_share: f64,
    boundary_write: f64,
    lock_prob: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name: name.into(),
        threads_per_cpu: 1,
        txn_types: vec![TxnType {
            weight: 1,
            // Fixed phase count: min == max makes the structure
            // deterministic; only addresses and burst lengths draw from the
            // per-thread stream.
            segments_mean: f64::from(segments),
            segments_min: segments,
            segments_max: segments,
            mem_per_segment,
            compute_mean: 90.0,
            hot_prob: boundary_share, // partition-boundary exchange
            private_prob: 1.0 - boundary_share,
            write_prob: boundary_write.clamp(0.0, 1.0),
            hot_write_factor: 1.0,
            reuse_prob: 0.55,
            dependent_prob: 0.12, // array code: mostly independent strides
            lock_prob,            // rare reduction locks / barrier counters
            cs_mem_ops: 1,
            io_prob: 0.0,
            io_ns_mean: 0,
            io_fixed: false,
            branches_per_segment: 3,
            branch_bias: 0.97, // loop branches — highly predictable
        }],
        hot_blocks: 8 * 1024, // boundary zones
        cold_blocks: 1_024,   // (barely used)
        private_blocks: 64 * 1024,
        code_blocks_per_type: 10,
        // A few barrier/reduction counters updated at iteration boundaries
        // — the synchronization points whose arrival order varies. Spreading
        // them over four locks keeps contention graded rather than convoyed.
        lock_pool: 4,
        hot_locks: 4,
        hot_lock_prob: 1.0,
        phases: PhaseModel::none(),
        startup_stagger_instr: 24_000,
    }
}

/// Builds the Barnes-Hut profile (16K bodies): tree-walk heavy, very little
/// boundary sharing.
pub fn barnes_profile() -> WorkloadProfile {
    scientific_profile("barnes", 320, 18, 0.05, 0.10, 0.05)
}

/// Builds the Ocean profile (514×514 grid): stencil sweeps with more
/// boundary exchange than Barnes.
pub fn ocean_profile() -> WorkloadProfile {
    scientific_profile("ocean", 280, 24, 0.14, 0.20, 0.07)
}

/// Instantiates Barnes-Hut (one thread per processor).
pub fn barnes_workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(barnes_profile(), cpus, seed)
}

/// Instantiates Ocean (one thread per processor).
pub fn ocean_workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(ocean_profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn one_thread_per_cpu() {
        assert_eq!(barnes_workload(16, 1).thread_count(), 16);
        assert_eq!(ocean_workload(8, 1).thread_count(), 8);
    }

    #[test]
    fn fixed_phase_structure() {
        // Two different seeds must produce the same *number* of segments per
        // transaction (only addresses differ).
        let count_segments = |seed: u64| {
            let mut w = barnes_workload(1, seed);
            let mut calls = 0;
            loop {
                match w.next_op(ThreadId(0)) {
                    Op::Call { .. } => calls += 1,
                    Op::TxnEnd => break,
                    _ => {}
                }
            }
            calls
        };
        assert_eq!(count_segments(1), count_segments(99));
        assert_eq!(count_segments(1), 320);
    }

    #[test]
    fn no_io_and_rare_locks() {
        let mut w = ocean_workload(2, 3);
        let mut locks = 0u32;
        let mut total = 0u32;
        for i in 0..30_000 {
            total += 1;
            match w.next_op(ThreadId(i % 2)) {
                Op::Io(_) => panic!("scientific workloads do no I/O"),
                Op::Lock(_) => locks += 1,
                _ => {}
            }
        }
        assert!(locks < total / 200, "locks should be rare: {locks}/{total}");
    }

    #[test]
    fn ocean_shares_more_than_barnes() {
        let b = barnes_profile().txn_types[0].hot_prob;
        let o = ocean_profile().txn_types[0].hot_prob;
        assert!(o > b);
    }
}
