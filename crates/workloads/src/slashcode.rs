//! Slashcode: dynamic web content serving (the software behind
//! slashdot.org).
//!
//! Table 3's most variable workload (CoV 3.6%, range 14.45% over just 30
//! transactions). The profile captures why: a heavy-tailed mix — most
//! requests render cached pages, but comment posts and uncached page builds
//! run long, write-heavy database transactions against hot tables behind a
//! couple of very hot locks — so *which* requests land in a 30-transaction
//! window changes the measured rate dramatically.

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for Slashcode.
pub const TABLE3_TRANSACTIONS: u64 = 30;

/// Worker threads per processor.
pub const WORKERS_PER_CPU: u32 = 6;

/// Builds the Slashcode profile.
pub fn profile() -> WorkloadProfile {
    let cached_page = TxnType {
        weight: 12,
        segments_mean: 5.0,
        segments_min: 1,
        segments_max: 20,
        mem_per_segment: 10,
        compute_mean: 50.0,
        hot_prob: 0.5,
        private_prob: 0.25,
        write_prob: 0.10,
        hot_write_factor: 0.3,
        reuse_prob: 0.5,
        dependent_prob: 0.45,
        lock_prob: 0.35,
        cs_mem_ops: 3,
        io_prob: 0.25,
        io_ns_mean: 35_000,
        io_fixed: false,
        branches_per_segment: 5,
        branch_bias: 0.85,
    };
    // Uncached page build: joins across story/comment tables.
    let page_build = TxnType {
        weight: 5,
        segments_mean: 28.0,
        segments_max: 110,
        mem_per_segment: 16,
        hot_prob: 0.35,
        private_prob: 0.2,
        write_prob: 0.22,
        lock_prob: 0.55,
        cs_mem_ops: 5,
        io_prob: 0.45,
        io_ns_mean: 90_000,
        ..cached_page
    };
    // Comment post: long write transaction serialized on hot tables.
    let comment_post = TxnType {
        weight: 3,
        segments_mean: 45.0,
        segments_max: 160,
        mem_per_segment: 14,
        write_prob: 0.45,
        lock_prob: 0.7,
        cs_mem_ops: 7,
        io_prob: 0.5,
        io_ns_mean: 120_000,
        hot_prob: 0.45,
        private_prob: 0.15,
        ..cached_page
    };
    WorkloadProfile {
        name: "slashcode".into(),
        threads_per_cpu: WORKERS_PER_CPU,
        txn_types: vec![cached_page, page_build, comment_post],
        hot_blocks: 16 * 1024,
        cold_blocks: 4_000_000,
        private_blocks: 6 * 1024,
        code_blocks_per_type: 28,
        lock_pool: 96,
        hot_locks: 2, // comment-table and story-cache locks
        hot_lock_prob: 0.65,
        phases: PhaseModel {
            period_txns: 300,
            amplitude: 0.25,
            gc_every: 150,
            gc_mem_ops: 600,
            growth_per_txn: 0.0,
            growth_cap_blocks: 0,
        },
        startup_stagger_instr: 0,
    }
}

/// Instantiates Slashcode for a `cpus`-processor machine.
pub fn workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn heavy_tailed_transaction_lengths() {
        let mut w = workload(4, 5);
        let mut lens = Vec::new();
        let mut len = 0u64;
        let mut i = 0u32;
        while lens.len() < 300 {
            len += 1;
            if let Op::TxnEnd = w.next_op(ThreadId(i % 24)) {
                lens.push(len);
                len = 0;
            }
            i += 1;
        }
        let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
        let max = *lens.iter().max().unwrap() as f64;
        assert!(
            max > 4.0 * mean,
            "tail txn ({max}) should dwarf the mean ({mean})"
        );
    }
}
