//! SPECjbb: a Java server-side business benchmark.
//!
//! Each thread owns one warehouse and operates almost entirely on its own
//! objects — nearly no lock contention and little sharing, which is why
//! Table 3 shows SPECjbb with the lowest commercial-workload space
//! variability (CoV 0.26%). Its *time* variability is substantial, though
//! (Figure 9b: >36% between checkpoints): the heap grows with object churn
//! and periodic garbage collections scan it, both modeled here as
//! deterministic functions of the per-thread transaction count.

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for SPECjbb.
pub const TABLE3_TRANSACTIONS: u64 = 60_000;

/// One warehouse (thread) per processor, as the benchmark scales.
pub const WAREHOUSES_PER_CPU: u32 = 1;

/// Builds the SPECjbb profile.
pub fn profile() -> WorkloadProfile {
    let base = TxnType {
        weight: 1,
        segments_mean: 4.0,
        segments_min: 1,
        segments_max: 12,
        mem_per_segment: 10,
        compute_mean: 60.0,
        hot_prob: 0.04,     // tiny shared state (company-level totals)
        private_prob: 0.88, // warehouse-local objects
        write_prob: 0.30,
        hot_write_factor: 0.25,
        reuse_prob: 0.6,
        dependent_prob: 0.35,
        lock_prob: 0.015,
        cs_mem_ops: 2,
        io_prob: 0.0, // fully in-memory
        io_ns_mean: 0,
        io_fixed: false,
        branches_per_segment: 5,
        branch_bias: 0.9,
    };
    WorkloadProfile {
        name: "specjbb".into(),
        threads_per_cpu: WAREHOUSES_PER_CPU,
        // The five JBB operation types, same weights as TPC-C.
        txn_types: vec![
            TxnType {
                weight: 45,
                segments_mean: 5.0,
                ..base
            },
            TxnType {
                weight: 43,
                segments_mean: 3.0,
                ..base
            },
            TxnType {
                weight: 4,
                segments_mean: 2.0,
                ..base
            },
            TxnType {
                weight: 4,
                segments_mean: 8.0,
                ..base
            },
            TxnType {
                weight: 4,
                segments_mean: 9.0,
                mem_per_segment: 14,
                ..base
            },
        ],
        hot_blocks: 2 * 1024,
        cold_blocks: 30_000,
        private_blocks: 48 * 1024, // warehouse heap slice
        code_blocks_per_type: 20,
        lock_pool: 16,
        hot_locks: 1,
        hot_lock_prob: 0.5,
        phases: PhaseModel {
            period_txns: 2_000,
            amplitude: 0.05,
            // JVM GC: periodic heap scans.
            gc_every: 350,
            gc_mem_ops: 2_500,
            // Object churn grows the live heap over the run.
            growth_per_txn: 2.0,
            growth_cap_blocks: 120_000,
        },
        startup_stagger_instr: 0,
    }
}

/// Instantiates SPECjbb for a `cpus`-processor machine.
pub fn workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn one_warehouse_per_cpu_and_low_sharing() {
        let w = workload(16, 3);
        assert_eq!(w.thread_count(), 16);
        for t in &w.profile().txn_types {
            assert!(t.private_prob > 0.8, "SPECjbb must be private-data heavy");
            assert!(t.lock_prob < 0.1, "SPECjbb must be nearly lock-free");
            assert_eq!(t.io_prob, 0.0, "SPECjbb is in-memory");
        }
    }

    #[test]
    fn no_io_ops_generated() {
        let mut w = workload(2, 4);
        for i in 0..20_000 {
            assert!(
                !matches!(w.next_op(ThreadId(i % 2)), Op::Io(_)),
                "SPECjbb generated an I/O op"
            );
        }
    }
}
