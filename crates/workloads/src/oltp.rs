//! OLTP: a TPC-C-like transaction mix (§3.1 of the paper).
//!
//! The paper's OLTP runs IBM DB2 against a 4000-warehouse TPC-C database
//! (~800 MB across five disks plus a log disk), 8 users per processor, no
//! keying or think time. This profile reproduces the concurrency structure:
//! the five-type TPC-C mix (new-order 45%, payment 43%, order-status 4%,
//! delivery 4%, stock-level 4%), hot index/metadata blocks, a large cold
//! table space, row/page latches plus a few hot latches (log buffer, space
//! management), and log/disk I/O.

use crate::profile::{PhaseModel, ProfiledWorkload, TxnType, WorkloadProfile};

/// Transactions Table 3 measures for OLTP.
pub const TABLE3_TRANSACTIONS: u64 = 1000;

/// The paper's users-per-processor count.
pub const USERS_PER_CPU: u32 = 8;

/// Builds the OLTP profile.
pub fn profile() -> WorkloadProfile {
    let base = TxnType {
        weight: 1,
        segments_mean: 8.0,
        segments_min: 2,
        segments_max: 32,
        mem_per_segment: 12,
        compute_mean: 45.0,
        hot_prob: 0.40,
        private_prob: 0.25,
        write_prob: 0.28,
        hot_write_factor: 0.15,
        reuse_prob: 0.55,
        dependent_prob: 0.25,
        lock_prob: 0.35,
        cs_mem_ops: 3,
        io_prob: 0.12,
        io_ns_mean: 60_000,
        io_fixed: false,
        branches_per_segment: 5,
        branch_bias: 0.88,
    };
    WorkloadProfile {
        name: "oltp".into(),
        threads_per_cpu: USERS_PER_CPU,
        txn_types: vec![
            // New-order: 45% — a dozen item lookups + stock updates.
            TxnType {
                weight: 45,
                segments_mean: 10.0,
                mem_per_segment: 14,
                write_prob: 0.32,
                ..base
            },
            // Payment: 43% — short, write-heavy, hits hot customer/warehouse
            // rows and the log latch.
            TxnType {
                weight: 43,
                segments_mean: 4.0,
                segments_max: 12,
                mem_per_segment: 10,
                write_prob: 0.45,
                lock_prob: 0.5,
                hot_prob: 0.5,
                ..base
            },
            // Order-status: 4% — small read-only.
            TxnType {
                weight: 4,
                segments_mean: 4.0,
                segments_max: 12,
                write_prob: 0.02,
                lock_prob: 0.1,
                io_prob: 0.05,
                ..base
            },
            // Delivery: 4% — long, batched updates.
            TxnType {
                weight: 4,
                segments_mean: 16.0,
                mem_per_segment: 16,
                write_prob: 0.4,
                lock_prob: 0.45,
                io_prob: 0.2,
                ..base
            },
            // Stock-level: 4% — long read-only scans of cold data.
            TxnType {
                weight: 4,
                segments_mean: 18.0,
                mem_per_segment: 18,
                hot_prob: 0.15,
                private_prob: 0.15,
                write_prob: 0.02,
                lock_prob: 0.05,
                io_prob: 0.1,
                ..base
            },
        ],
        // ~2 MB of hot index/metadata; the cold region models the *cached*
        // slice of the 800 MB table space (DB2's buffer pool working set) —
        // large enough for capacity misses, small enough that L2 geometry
        // matters, as Experiment 1 requires.
        hot_blocks: 4 * 1024,
        cold_blocks: 40_000,
        private_blocks: 2 * 1024,
        code_blocks_per_type: 24,
        lock_pool: 256,
        hot_locks: 6,
        hot_lock_prob: 0.25,
        // Slow mix/intensity drift plus a periodic log-flush scan: the
        // source of the Figure 8/9a time variability.
        phases: PhaseModel {
            period_txns: 400,
            amplitude: 0.30,
            gc_every: 250,
            gc_mem_ops: 400,
            growth_per_txn: 0.0,
            growth_cap_blocks: 0,
        },
        startup_stagger_instr: 0,
    }
}

/// Instantiates OLTP for a `cpus`-processor machine (8 users per CPU).
pub fn workload(cpus: usize, seed: u64) -> ProfiledWorkload {
    ProfiledWorkload::new(profile(), cpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::ids::ThreadId;
    use mtvar_sim::ops::Op;
    use mtvar_sim::workload::Workload;

    #[test]
    fn paper_mix_and_thread_count() {
        let w = workload(16, 1);
        assert_eq!(w.thread_count(), 128);
        let weights: Vec<u32> = w.profile().txn_types.iter().map(|t| t.weight).collect();
        assert_eq!(weights, vec![45, 43, 4, 4, 4]);
    }

    #[test]
    fn generates_valid_stream() {
        let mut w = workload(2, 9);
        let mut txns = 0;
        for i in 0..20_000 {
            if let Op::TxnEnd = w.next_op(ThreadId(i % 16)) {
                txns += 1;
            }
        }
        assert!(txns > 20, "OLTP must commit transactions, got {txns}");
    }
}
