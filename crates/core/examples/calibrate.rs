//! Calibration scratchpad: prints variability numbers for the paper's key
//! experiments so workload-profile constants can be tuned. Not part of the
//! reproduction itself — see the `mtvar-bench` crate for the real harness.

use std::time::Instant;

use mtvar_core::metrics::VariabilityReport;
use mtvar_core::runspace::{run_space, RunPlan};
use mtvar_core::wcr::wrong_conclusion_ratio;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

fn main() {
    let t0 = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(String::as_str).unwrap_or("oltp");

    match what {
        "oltp" => {
            // OLTP space variability vs run length (Table 4 shape).
            for txns in [200u64, 400, 1000] {
                let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
                let plan = RunPlan::new(txns).with_runs(10).with_warmup(1000);
                let space = run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan).unwrap();
                let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
                println!(
                    "oltp {txns}-txn: mean={:.0} cov={:.2}% range={:.2}%  [{:.1?}]",
                    rep.mean,
                    rep.cov_percent,
                    rep.range_percent,
                    t0.elapsed()
                );
            }
        }
        "assoc" => {
            // Experiment 1 shape: L2 associativity 1/2/4.
            let mut spaces = Vec::new();
            for ways in [1u32, 2, 4] {
                let cfg = MachineConfig::hpca2003()
                    .with_l2_associativity(ways)
                    .with_perturbation(4, 0);
                let plan = RunPlan::new(200).with_runs(10).with_warmup(1000);
                let space = run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan).unwrap();
                let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
                println!(
                    "assoc {ways}-way: mean={:.0} cov={:.2}% range={:.2}% [{:.1?}]",
                    rep.mean,
                    rep.cov_percent,
                    rep.range_percent,
                    t0.elapsed()
                );
                spaces.push(space.runtimes());
            }
            for (i, j, label) in [(0, 1, "DM vs 2w"), (0, 2, "DM vs 4w"), (1, 2, "2w vs 4w")] {
                let w = wrong_conclusion_ratio(&spaces[i], &spaces[j]).unwrap();
                println!(
                    "{label}: superior={:?} wcr={:.1}%",
                    w.superior, w.wcr_percent
                );
            }
        }
        "rob" => {
            use mtvar_sim::proc::{OooConfig, ProcessorConfig};
            let mut spaces = Vec::new();
            for rob in [16u32, 32, 64] {
                let cfg = MachineConfig::hpca2003()
                    .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
                    .with_perturbation(4, 0);
                let plan = RunPlan::new(50).with_runs(10).with_warmup(400);
                let space = run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan).unwrap();
                let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
                println!(
                    "rob {rob}: mean={:.0} cov={:.2}% range={:.2}% [{:.1?}]",
                    rep.mean,
                    rep.cov_percent,
                    rep.range_percent,
                    t0.elapsed()
                );
                spaces.push(space.runtimes());
            }
            for (i, j, label) in [(0, 1, "16 vs 32"), (0, 2, "16 vs 64"), (1, 2, "32 vs 64")] {
                let w = wrong_conclusion_ratio(&spaces[i], &spaces[j]).unwrap();
                println!(
                    "{label}: superior={:?} wcr={:.1}%",
                    w.superior, w.wcr_percent
                );
            }
        }
        "bench7" => {
            for b in Benchmark::ALL {
                let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
                let txns = match b {
                    Benchmark::Ecperf => 50,
                    Benchmark::Specjbb => 2000,
                    Benchmark::Apache => 500,
                    Benchmark::Oltp => 400,
                    _ => b.table3_transactions(16),
                };
                let warmup = match b {
                    Benchmark::Barnes | Benchmark::Ocean => 0,
                    _ => 200,
                };
                let plan = RunPlan::new(txns).with_runs(8).with_warmup(warmup);
                let space = run_space(&cfg, || b.workload(16, 42), &plan).unwrap();
                let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
                println!(
                    "{b}: txns={txns} mean={:.0} cov={:.2}% range={:.2}% [{:.1?}]",
                    rep.mean,
                    rep.cov_percent,
                    rep.range_percent,
                    t0.elapsed()
                );
            }
        }
        "fig9" => {
            use mtvar_core::runspace::run_space_from_checkpoint;
            use mtvar_sim::machine::Machine;
            for (b, spacing, txns) in [
                (Benchmark::Oltp, 1000u64, 200u64),
                (Benchmark::Specjbb, 2000, 500),
            ] {
                let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
                let mut m = Machine::new(cfg, b.workload(16, 42)).unwrap();
                let mut means = Vec::new();
                let mut covs = Vec::new();
                for pt in 0..10u64 {
                    m.run_transactions(spacing).unwrap();
                    let plan = RunPlan::new(txns).with_runs(5).with_base_seed(pt * 1000);
                    let space = run_space_from_checkpoint(&m, &plan).unwrap();
                    let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
                    means.push(rep.mean);
                    covs.push(rep.cov_percent);
                }
                let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                println!(
                    "{b}: checkpoint means {:?} spread={:.1}% within-cov avg={:.2}% [{:.1?}]",
                    means.iter().map(|m| m.round()).collect::<Vec<_>>(),
                    100.0 * (hi - lo) / (means.iter().sum::<f64>() / 10.0),
                    covs.iter().sum::<f64>() / 10.0,
                    t0.elapsed()
                );
            }
        }
        "fig8" => {
            use mtvar_core::metrics::windowed_series;
            use mtvar_sim::machine::Machine;
            let cfg = MachineConfig::hpca2003().with_perturbation(4, 7);
            let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).unwrap();
            m.run_transactions(500).unwrap();
            let r = m.run_transactions(8000).unwrap();
            let series = windowed_series(&r, 200).unwrap();
            let lo = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            println!(
                "fig8: {} windows, mean={:.0}, swing={:.1}% [{:.1?}]",
                series.len(),
                mean,
                100.0 * (hi - lo) / mean,
                t0.elapsed()
            );
        }
        "diag" => {
            use mtvar_sim::machine::Machine;
            use mtvar_sim::proc::{OooConfig, ProcessorConfig};
            for (label, cfg) in [
                ("simple", MachineConfig::hpca2003().with_perturbation(4, 1)),
                (
                    "rob16",
                    MachineConfig::hpca2003()
                        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(16)))
                        .with_perturbation(4, 1),
                ),
                (
                    "rob64",
                    MachineConfig::hpca2003()
                        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(64)))
                        .with_perturbation(4, 1),
                ),
            ] {
                let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).unwrap();
                m.run_transactions(100).unwrap();
                let r = m.run_transactions(200).unwrap();
                println!(
                    "--- {label}: cpt={:.0} elapsed={}",
                    r.cycles_per_transaction(),
                    r.elapsed()
                );
                println!("  mem {:?}", r.mem);
                println!("  proc {:?}", r.proc);
                println!(
                    "  locks {:?} contention={:.2}",
                    r.locks,
                    r.locks.contention_ratio()
                );
                println!("  sched {:?}", r.sched);
            }
        }
        other => eprintln!("unknown calibration target {other}"),
    }
}
