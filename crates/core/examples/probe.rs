//! Scratch diagnostic for calibration: Table-3 rows at the full 20-run
//! budget. Usage: `probe <benchmark> [txns] [warmup]`.

use mtvar_core::metrics::VariabilityReport;
use mtvar_core::runspace::{run_space, RunPlan};
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("barnes");
    let b = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .expect("unknown benchmark");
    let txns: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(match b {
        Benchmark::Barnes | Benchmark::Ocean => 16,
        Benchmark::Ecperf => 50,
        Benchmark::Slashcode => 30,
        Benchmark::Oltp => 400,
        Benchmark::Apache => 500,
        Benchmark::Specjbb => 2000,
    });
    let warmup: u64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(match b {
        Benchmark::Barnes | Benchmark::Ocean => 0,
        _ => 200,
    });
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
    let plan = RunPlan::new(txns).with_runs(20).with_warmup(warmup);
    let space = run_space(&cfg, || b.workload(16, 42), &plan).unwrap();
    let rep = VariabilityReport::from_runtimes(&space.runtimes()).unwrap();
    println!(
        "{b} txns={txns}: mean={:.0} cov={:.2}% range={:.2}%",
        rep.mean, rep.cov_percent, rep.range_percent
    );
}
