//! The **wrong conclusion ratio** (§4.1): "the percentage of comparison
//! experiment pairs that reach an incorrect conclusion."
//!
//! For two configurations A and B with `N` runs each, the correct conclusion
//! is the relationship between the two sample means; WCR enumerates all `N²`
//! cross pairs `(aᵢ, bⱼ)` and reports the percentage whose single-run
//! comparison points the other way. It estimates the probability of a wrong
//! conclusion when a researcher ignores variability and compares single
//! simulations.

use mtvar_stats::describe::Summary;

use crate::runspace::RunSpace;
use crate::{CoreError, Result};

/// Which configuration a comparison ranks better (lower runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Superior {
    /// The first configuration's mean is lower (faster).
    First,
    /// The second configuration's mean is lower (faster).
    Second,
}

/// Result of a wrong-conclusion-ratio enumeration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Wcr {
    /// Which configuration the run averages rank better.
    pub superior: Superior,
    /// Percentage of cross pairs contradicting the averages (0–100).
    pub wcr_percent: f64,
    /// Number of contradicting pairs.
    pub wrong_pairs: u64,
    /// Total pairs enumerated (`N_a × N_b`).
    pub total_pairs: u64,
}

/// [`wrong_conclusion_ratio`] over two collected [`RunSpace`]s — the form
/// used with [`crate::runspace::Executor`] output.
///
/// A WCR is only as trustworthy as the runs beneath it: check
/// [`RunSpace::is_clean`] on both spaces (or collect them with a strict
/// executor, [`crate::runspace::Executor::with_invariant_checks`]) before
/// drawing conclusions from runs whose invariants may have fired.
///
/// # Errors
///
/// Same conditions as [`wrong_conclusion_ratio`].
pub fn wcr_from_spaces(a: &RunSpace, b: &RunSpace) -> Result<Wcr> {
    wrong_conclusion_ratio(&a.runtimes(), &b.runtimes())
}

/// Enumerates the wrong-conclusion ratio between two run sets of the
/// *runtime-like* metric (lower is better).
///
/// Ties — single-run pairs with exactly equal values — are counted as wrong
/// with weight ½ (they provide no evidence either way); exact float ties are
/// vanishingly rare in practice.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if either sample is empty or the
/// two means are exactly equal (no correct conclusion exists), and
/// [`CoreError::Stats`] for non-finite inputs.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mtvar_core::CoreError> {
/// use mtvar_core::wcr::{wrong_conclusion_ratio, Superior};
///
/// // B is faster on average, but the ranges overlap.
/// let a = [10.0, 11.0, 12.0];
/// let b = [9.0, 10.5, 11.5];
/// let w = wrong_conclusion_ratio(&a, &b)?;
/// assert_eq!(w.superior, Superior::Second);
/// assert!(w.wcr_percent > 0.0 && w.wcr_percent < 50.0);
/// # Ok(())
/// # }
/// ```
pub fn wrong_conclusion_ratio(a: &[f64], b: &[f64]) -> Result<Wcr> {
    let sa = Summary::from_slice(a)?;
    let sb = Summary::from_slice(b)?;
    if sa.mean() == sb.mean() {
        return Err(CoreError::InvalidExperiment {
            what: "the two configurations have identical means; no conclusion to contradict".into(),
        });
    }
    // Correct conclusion: the lower mean is the superior configuration.
    let first_superior = sa.mean() < sb.mean();
    let mut wrong_halves: u64 = 0; // counted in halves so ties weigh 1/2
    for &x in a {
        for &y in b {
            let pair_first_better = x < y;
            if x == y {
                wrong_halves += 1;
            } else if pair_first_better != first_superior {
                wrong_halves += 2;
            }
        }
    }
    let total_pairs = (a.len() * b.len()) as u64;
    Ok(Wcr {
        superior: if first_superior {
            Superior::First
        } else {
            Superior::Second
        },
        wcr_percent: 100.0 * wrong_halves as f64 / 2.0 / total_pairs as f64,
        wrong_pairs: wrong_halves / 2,
        total_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_ranges_give_zero_wcr() {
        let fast = [1.0, 1.1, 1.2];
        let slow = [2.0, 2.1, 2.2];
        let w = wrong_conclusion_ratio(&fast, &slow).unwrap();
        assert_eq!(w.superior, Superior::First);
        assert_eq!(w.wcr_percent, 0.0);
        assert_eq!(w.total_pairs, 9);
    }

    #[test]
    fn fully_interleaved_gives_high_wcr() {
        // Means differ slightly but every pair comparison is a coin flip.
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0]; // mean 5 vs 4: b slower
        let w = wrong_conclusion_ratio(&a, &b).unwrap();
        assert_eq!(w.superior, Superior::First);
        // Pairs where a > b: (3,2),(5,2),(5,4),(7,2),(7,4),(7,6) = 6/16.
        assert!((w.wcr_percent - 37.5).abs() < 1e-9);
        assert_eq!(w.wrong_pairs, 6);
    }

    #[test]
    fn direction_is_symmetric() {
        let a = [10.0, 12.0];
        let b = [9.0, 11.0];
        let ab = wrong_conclusion_ratio(&a, &b).unwrap();
        let ba = wrong_conclusion_ratio(&b, &a).unwrap();
        assert_eq!(ab.superior, Superior::Second);
        assert_eq!(ba.superior, Superior::First);
        assert!((ab.wcr_percent - ba.wcr_percent).abs() < 1e-12);
    }

    #[test]
    fn ties_count_half() {
        let a = [1.0, 2.0];
        let b = [2.0, 3.0]; // mean 1.5 vs 2.5, a superior
                            // Pairs: (1,2)+, (1,3)+, (2,2) tie, (2,3)+ => 0.5/4 = 12.5%.
        let w = wrong_conclusion_ratio(&a, &b).unwrap();
        assert!((w.wcr_percent - 12.5).abs() < 1e-9);
    }

    #[test]
    fn wcr_bounds() {
        // Property: WCR is always within [0, 100].
        let a = [5.0, 6.0, 7.0, 8.0];
        let b = [6.5, 6.6, 6.7, 5.9];
        let w = wrong_conclusion_ratio(&a, &b).unwrap();
        assert!((0.0..=100.0).contains(&w.wcr_percent));
    }

    #[test]
    fn validation() {
        assert!(wrong_conclusion_ratio(&[], &[1.0]).is_err());
        assert!(wrong_conclusion_ratio(&[1.0], &[]).is_err());
        assert!(wrong_conclusion_ratio(&[1.0, 2.0], &[1.5, 1.5]).is_err());
        assert!(wrong_conclusion_ratio(&[f64::NAN], &[1.0]).is_err());
    }
}
