//! Fixed-simulation-budget planning — the trade-off the paper leaves as
//! future work (§5.2): "Given a fixed simulation budget (time allowed for
//! all simulations), a tradeoff must be made between the length of each
//! simulation and the number of simulations required to maximize the
//! confidence probability."
//!
//! The machinery: Table 4 shows the coefficient of variation falling with
//! run length; empirically it follows a power law `CoV(L) ≈ a·L^(−b)` (for
//! the paper's OLTP data, `b ≈ 0.74`). Fitting that law to a few pilot
//! lengths ([`CovModel::fit`]) lets [`plan_budget`] search the `(runs n,
//! length L)` frontier under `n·L ≤ budget` for the split minimizing the
//! confidence-interval half-width `t_{n−1} · CoV(L) / √n`.

use mtvar_sim::checkpoint::Snap;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::workload::Workload;
use mtvar_stats::infer::critical_value;

use crate::runspace::{Executor, RunPlan};
use crate::{CoreError, Result};

/// A fitted power-law model of space variability vs run length:
/// `CoV(L) = coefficient · L^(−exponent)`, with CoV in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CovModel {
    coefficient: f64,
    exponent: f64,
}

impl CovModel {
    /// Constructs a model directly from parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if `coefficient <= 0` or the
    /// parameters are not finite.
    pub fn new(coefficient: f64, exponent: f64) -> Result<Self> {
        if !coefficient.is_finite() || !exponent.is_finite() || coefficient <= 0.0 {
            return Err(CoreError::InvalidExperiment {
                what: "CoV model needs a positive finite coefficient and finite exponent".into(),
            });
        }
        Ok(CovModel {
            coefficient,
            exponent,
        })
    }

    /// Fits the power law to pilot measurements `(run length, CoV percent)`
    /// by least squares in log-log space (exactly how one would fit the
    /// paper's Table 4 column).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if fewer than two distinct
    /// lengths are supplied or any value is non-positive.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), mtvar_core::CoreError> {
    /// use mtvar_core::budget::CovModel;
    ///
    /// // The paper's Table 4: OLTP CoV over 200..1000-transaction runs.
    /// let table4 = [(200, 3.27), (400, 2.87), (600, 2.16), (800, 1.53), (1000, 0.98)];
    /// let model = CovModel::fit(&table4)?;
    /// // Interpolates sensibly between the measured lengths.
    /// let cov_500 = model.cov_percent_at(500);
    /// assert!(cov_500 > 0.98 && cov_500 < 3.27);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(points: &[(u64, f64)]) -> Result<Self> {
        // Filter first, then count distinct lengths on what actually enters
        // the regression: counting on the raw input would accept inputs like
        // [(200, 3.0), (400, 0.0)] — two distinct lengths, but only one
        // usable point — and fit a line through a single point.
        let usable_raw: Vec<(u64, f64)> = points
            .iter()
            .filter(|(l, c)| *l > 0 && *c > 0.0 && c.is_finite())
            .copied()
            .collect();
        let distinct_lengths = {
            let mut ls: Vec<u64> = usable_raw.iter().map(|(l, _)| *l).collect();
            ls.sort_unstable();
            ls.dedup();
            ls.len()
        };
        let usable: Vec<(f64, f64)> = usable_raw
            .iter()
            .map(|(l, c)| ((*l as f64).ln(), c.ln()))
            .collect();
        if usable.len() < 2 || distinct_lengths < 2 {
            return Err(CoreError::InvalidExperiment {
                what: "fitting needs at least two pilot lengths with positive CoV".into(),
            });
        }
        let n = usable.len() as f64;
        let sx: f64 = usable.iter().map(|(x, _)| x).sum();
        let sy: f64 = usable.iter().map(|(_, y)| y).sum();
        let sxx: f64 = usable.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = usable.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Err(CoreError::InvalidExperiment {
                what: "pilot lengths are collinear in log space".into(),
            });
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        CovModel::new(intercept.exp(), -slope)
    }

    /// Predicted coefficient of variation (percent) for runs of `txns`
    /// transactions.
    pub fn cov_percent_at(&self, txns: u64) -> f64 {
        self.coefficient * (txns.max(1) as f64).powf(-self.exponent)
    }

    /// The fitted decay exponent `b` (how fast averaging tames variability).
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Measures pilot CoV points by simulation and fits the power law —
    /// the end-to-end form of [`CovModel::fit`].
    ///
    /// For each length in `pilot_lengths`, a run space of `pilot_runs`
    /// perturbed runs (after `warmup` transactions each) executes on
    /// `executor` — in parallel, sharing the executor's result cache — and
    /// contributes one `(length, CoV)` point.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors, and [`CovModel::fit`]'s conditions on
    /// the measured points (at least two distinct lengths with positive
    /// CoV).
    pub fn fit_by_pilot<W, F>(
        executor: &Executor,
        config: &MachineConfig,
        make_workload: F,
        pilot_lengths: &[u64],
        pilot_runs: usize,
        warmup: u64,
    ) -> Result<Self>
    where
        W: Workload + Snap + Clone + Send + Sync,
        F: Fn() -> W + Sync,
    {
        let mut points = Vec::with_capacity(pilot_lengths.len());
        for &length in pilot_lengths {
            let plan = RunPlan::new(length)
                .with_runs(pilot_runs)
                .with_warmup(warmup);
            let space = executor.run_space(config, &make_workload, &plan)?;
            let summary = space.summary()?;
            points.push((length, summary.coefficient_of_variation()?));
        }
        CovModel::fit(&points)
    }
}

/// The recommended split of a fixed budget.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BudgetPlan {
    /// Number of perturbed runs.
    pub runs: usize,
    /// Transactions per run.
    pub transactions_per_run: u64,
    /// Predicted CoV (percent) at that run length.
    pub expected_cov_percent: f64,
    /// Predicted relative half-width (percent of the mean) of the
    /// confidence interval on the mean.
    pub ci_halfwidth_percent: f64,
}

/// Searches the `(runs, length)` frontier under `runs × length ≤
/// total_transactions` for the split minimizing the predicted CI half-width
/// at `confidence`.
///
/// `min_transactions` guards against degenerate ultra-short runs (the
/// paper's §3.1 transaction-quantization warning: "simulation runs should be
/// long enough to mitigate" cold-start and end effects).
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if the budget cannot fund at
/// least two runs of `min_transactions`, or [`CoreError::Stats`] for an
/// invalid confidence level.
pub fn plan_budget(
    model: &CovModel,
    total_transactions: u64,
    min_transactions: u64,
    confidence: f64,
) -> Result<BudgetPlan> {
    let min_txns = min_transactions.max(1);
    if total_transactions < 2 * min_txns {
        return Err(CoreError::InvalidExperiment {
            what: format!(
                "budget of {total_transactions} transactions cannot fund two {min_txns}-transaction runs"
            ),
        });
    }
    let max_runs = (total_transactions / min_txns).min(1_000) as usize;
    let mut best: Option<BudgetPlan> = None;
    for runs in 2..=max_runs {
        let length = total_transactions / runs as u64;
        if length < min_txns {
            break;
        }
        let cov = model.cov_percent_at(length);
        let t = critical_value(runs as u64, confidence)?;
        let halfwidth = t * cov / (runs as f64).sqrt();
        if best.is_none_or(|b| halfwidth < b.ci_halfwidth_percent) {
            best = Some(BudgetPlan {
                runs,
                transactions_per_run: length,
                expected_cov_percent: cov,
                ci_halfwidth_percent: halfwidth,
            });
        }
    }
    best.ok_or_else(|| CoreError::InvalidExperiment {
        what: "no feasible split found".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_synthetic_power_law() {
        // cov = 50 * L^-0.5
        let pts: Vec<(u64, f64)> = [100u64, 200, 400, 800, 1600]
            .iter()
            .map(|&l| (l, 50.0 * (l as f64).powf(-0.5)))
            .collect();
        let m = CovModel::fit(&pts).unwrap();
        assert!((m.exponent() - 0.5).abs() < 1e-9);
        assert!((m.cov_percent_at(400) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn fit_of_paper_table4_is_sensible() {
        let table4 = [
            (200u64, 3.27),
            (400, 2.87),
            (600, 2.16),
            (800, 1.53),
            (1000, 0.98),
        ];
        let m = CovModel::fit(&table4).unwrap();
        // The paper's data decays a bit faster than sqrt averaging.
        assert!(
            m.exponent() > 0.4 && m.exponent() < 1.2,
            "b = {}",
            m.exponent()
        );
        // Interpolation stays within the measured envelope.
        let c = m.cov_percent_at(500);
        assert!(c > 0.9 && c < 3.3);
    }

    #[test]
    fn fit_validation() {
        assert!(CovModel::fit(&[]).is_err());
        assert!(CovModel::fit(&[(100, 2.0)]).is_err());
        assert!(CovModel::fit(&[(100, 2.0), (100, 2.5)]).is_err());
        assert!(CovModel::fit(&[(100, -1.0), (200, 0.0)]).is_err());
        assert!(CovModel::new(0.0, 1.0).is_err());
    }

    #[test]
    fn fit_rejects_single_usable_point() {
        // Regression: two distinct raw lengths but only one usable point —
        // the distinct-length check must run on the filtered set, not the
        // raw input, or this "fits" a line through one point.
        assert!(CovModel::fit(&[(200, 3.0), (400, 0.0)]).is_err());
        assert!(CovModel::fit(&[(200, 3.0), (400, f64::NAN)]).is_err());
        assert!(CovModel::fit(&[(0, 3.0), (400, 2.0)]).is_err());
        // Two usable points sharing a length are just as degenerate.
        assert!(CovModel::fit(&[(200, 3.0), (200, 2.5), (400, 0.0)]).is_err());
        // But two usable distinct lengths amid junk still fit.
        assert!(CovModel::fit(&[(200, 3.0), (400, 0.0), (400, 2.0)]).is_ok());
    }

    #[test]
    fn flat_cov_favours_many_short_runs() {
        // Exponent 0: lengthening runs buys nothing, so the planner should
        // push toward many runs (bounded by the minimum length).
        let m = CovModel::new(3.0, 0.0).unwrap();
        let plan = plan_budget(&m, 10_000, 100, 0.95).unwrap();
        assert_eq!(plan.transactions_per_run, 100);
        assert_eq!(plan.runs, 100);
    }

    #[test]
    fn steep_cov_favours_longer_runs() {
        // Exponent 1: doubling length halves CoV — better than the sqrt(n)
        // gain from doubling runs, so the planner picks few long runs (only
        // the fat t tail at tiny n keeps it off the n = 2 extreme).
        let m = CovModel::new(300.0, 1.0).unwrap();
        let plan = plan_budget(&m, 10_000, 100, 0.95).unwrap();
        assert!(plan.runs <= 8, "got {} runs", plan.runs);
        assert!(plan.transactions_per_run >= 1_250);
    }

    #[test]
    fn halfwidth_improves_with_budget() {
        let m = CovModel::new(60.0, 0.6).unwrap();
        let small = plan_budget(&m, 2_000, 50, 0.95).unwrap();
        let large = plan_budget(&m, 20_000, 50, 0.95).unwrap();
        assert!(large.ci_halfwidth_percent < small.ci_halfwidth_percent);
    }

    #[test]
    fn budget_validation() {
        let m = CovModel::new(10.0, 0.5).unwrap();
        assert!(plan_budget(&m, 150, 100, 0.95).is_err());
        assert!(plan_budget(&m, 10_000, 100, 1.5).is_err());
    }

    #[test]
    fn plan_respects_budget() {
        let m = CovModel::new(40.0, 0.7).unwrap();
        let plan = plan_budget(&m, 7_777, 120, 0.95).unwrap();
        assert!(plan.runs as u64 * plan.transactions_per_run <= 7_777);
        assert!(plan.transactions_per_run >= 120);
        assert!(plan.ci_halfwidth_percent > 0.0);
    }
}
