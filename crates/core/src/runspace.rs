//! Executing the *space of runs* for one configuration (§3.3).
//!
//! The paper's mechanism: start every run from the same initial conditions
//! (fresh machine or checkpoint), give each a unique perturbation seed, and
//! collect the resulting cycles-per-transaction sample. "We use the mean of
//! these runs as our performance metric."

use serde::{Deserialize, Serialize};

use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::stats::RunResult;
use mtvar_sim::workload::Workload;
use mtvar_stats::describe::Summary;

use crate::{CoreError, Result};

/// Design of a multi-run experiment on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunPlan {
    /// Number of perturbed runs (the paper's experiments use 20).
    pub runs: usize,
    /// Transactions measured per run.
    pub transactions: u64,
    /// Transactions executed before measurement starts (cache and lock-state
    /// warmup; the paper warms its database for 10,000 transactions).
    pub warmup_transactions: u64,
    /// First perturbation seed; run `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl RunPlan {
    /// A plan with the paper's default of 20 runs.
    pub fn new(transactions: u64) -> Self {
        RunPlan {
            runs: 20,
            transactions,
            warmup_transactions: 0,
            base_seed: 0,
        }
    }

    /// Sets the number of runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_transactions = warmup;
        self
    }

    /// Sets the base perturbation seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.runs == 0 || self.transactions == 0 {
            return Err(CoreError::InvalidExperiment {
                what: "a run plan needs runs >= 1 and transactions >= 1".into(),
            });
        }
        Ok(())
    }
}

/// The collected space of runs for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpace {
    results: Vec<RunResult>,
}

impl RunSpace {
    /// Wraps already-collected results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if `results` is empty.
    pub fn from_results(results: Vec<RunResult>) -> Result<Self> {
        if results.is_empty() {
            return Err(CoreError::InvalidExperiment {
                what: "a run space needs at least one result".into(),
            });
        }
        Ok(RunSpace { results })
    }

    /// The individual run results.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Cycles-per-transaction of every run, in seed order.
    pub fn runtimes(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(RunResult::cycles_per_transaction)
            .collect()
    }

    /// Summary statistics (mean/sd/min/max) of the runtimes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if a runtime is non-finite.
    pub fn summary(&self) -> Result<Summary> {
        Ok(Summary::from_slice(&self.runtimes())?)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the space holds no runs (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

/// Runs `plan` on a fresh machine per run: build with perturbation seed
/// `base_seed + i`, warm up, measure.
///
/// # Errors
///
/// Propagates configuration and deadlock errors from the simulator.
pub fn run_space<W, F>(
    config: &MachineConfig,
    make_workload: F,
    plan: &RunPlan,
) -> Result<RunSpace>
where
    W: Workload,
    F: Fn() -> W,
{
    plan.validate()?;
    let mut results = Vec::with_capacity(plan.runs);
    for i in 0..plan.runs {
        let cfg = config
            .clone()
            .with_perturbation(config.perturbation_max_ns, plan.base_seed + i as u64);
        let mut machine = Machine::new(cfg, make_workload())?;
        if plan.warmup_transactions > 0 {
            machine.run_transactions(plan.warmup_transactions)?;
        }
        results.push(machine.run_transactions(plan.transactions)?);
    }
    RunSpace::from_results(results)
}

/// Runs `plan` from a checkpoint: every run restarts from the identical
/// machine state, differing only in perturbation seed — the paper's
/// space-variability protocol.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_space_from_checkpoint<W>(
    checkpoint: &Machine<W>,
    plan: &RunPlan,
) -> Result<RunSpace>
where
    W: Workload + Clone,
{
    plan.validate()?;
    let mut results = Vec::with_capacity(plan.runs);
    for i in 0..plan.runs {
        let mut machine = checkpoint.with_perturbation_seed(plan.base_seed + i as u64);
        if plan.warmup_transactions > 0 {
            machine.run_transactions(plan.warmup_transactions)?;
        }
        results.push(machine.run_transactions(plan.transactions)?);
    }
    RunSpace::from_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::workload::SharingWorkload;

    fn small_config() -> MachineConfig {
        MachineConfig::hpca2003().with_cpus(4).with_perturbation(4, 0)
    }

    fn small_workload() -> SharingWorkload {
        SharingWorkload::new(8, 42, 40, 4096, 10)
    }

    #[test]
    fn run_space_collects_all_runs() {
        let plan = RunPlan::new(30).with_runs(5);
        let space = run_space(&small_config(), small_workload, &plan).unwrap();
        assert_eq!(space.len(), 5);
        let rt = space.runtimes();
        assert!(rt.iter().all(|&r| r > 0.0));
        let s = space.summary().unwrap();
        assert_eq!(s.n(), 5);
    }

    #[test]
    fn perturbed_runs_differ() {
        let plan = RunPlan::new(40).with_runs(6).with_warmup(10);
        let space = run_space(&small_config(), small_workload, &plan).unwrap();
        let rt = space.runtimes();
        assert!(
            rt.iter().any(|&r| (r - rt[0]).abs() > 1e-9),
            "perturbed runs should differ: {rt:?}"
        );
    }

    #[test]
    fn same_plan_reproduces_exactly() {
        let plan = RunPlan::new(25).with_runs(3);
        let a = run_space(&small_config(), small_workload, &plan).unwrap();
        let b = run_space(&small_config(), small_workload, &plan).unwrap();
        assert_eq!(a.runtimes(), b.runtimes());
    }

    #[test]
    fn checkpoint_space_starts_from_identical_state() {
        let mut m = Machine::new(small_config(), small_workload()).unwrap();
        m.run_transactions(20).unwrap();
        let plan = RunPlan::new(30).with_runs(4);
        let a = run_space_from_checkpoint(&m, &plan).unwrap();
        let b = run_space_from_checkpoint(&m, &plan).unwrap();
        assert_eq!(a.runtimes(), b.runtimes());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn plan_validation() {
        let bad = RunPlan::new(10).with_runs(0);
        assert!(run_space(&small_config(), small_workload, &bad).is_err());
        let bad2 = RunPlan::new(0);
        assert!(run_space(&small_config(), small_workload, &bad2).is_err());
        assert!(RunSpace::from_results(vec![]).is_err());
    }
}
