//! Executing the *space of runs* for one configuration (§3.3), sequentially
//! or in parallel.
//!
//! The paper's mechanism: start every run from the same initial conditions
//! (fresh machine or checkpoint), give each a unique perturbation seed, and
//! collect the resulting cycles-per-transaction sample. "We use the mean of
//! these runs as our performance metric."
//!
//! # Parallel execution
//!
//! Every run in a space is independent — the ensemble is embarrassingly
//! parallel — so the [`Executor`] fans runs out across OS threads with a
//! small work-stealing pool built on [`std::thread::scope`] (no external
//! crates). Three properties make the parallel path safe to adopt
//! everywhere:
//!
//! 1. **Deterministic seeding.** Each run's perturbation seed is derived by
//!    [`derive_run_seed`], a SplitMix64-style mix of `(config_id, base_seed,
//!    run_index)`. Seeds are a pure function of the plan, never of thread
//!    count or scheduling order, and results are written into their run-index
//!    slot — so a space is **bit-identical** for 1, 2 or N threads, and
//!    identical to the sequential path.
//! 2. **Result caching.** Completed runs are memoized under
//!    `(config_fingerprint, workload_fingerprint, seed, warmup,
//!    transactions)`. Overlapping experiments — WCR sweeps, sample-size
//!    walks, ANOVA time-sampling — re-use runs instead of re-simulating
//!    them.
//! 3. **Observability.** A [`RunProgress`] observer receives
//!    started/completed/cached callbacks (with per-run wall time), which the
//!    examples and benches use for live reporting.
//!
//! ```no_run
//! # fn main() -> Result<(), mtvar_core::CoreError> {
//! use mtvar_core::runspace::{Executor, RunPlan};
//! use mtvar_sim::config::MachineConfig;
//! use mtvar_sim::workload::SharingWorkload;
//!
//! let config = MachineConfig::hpca2003().with_perturbation(4, 0);
//! let plan = RunPlan::new(200).with_runs(30);
//! let executor = Executor::new(); // one worker per core
//! let space = executor.run_space(&config, || SharingWorkload::new(16, 7, 50, 4096, 10), &plan)?;
//! assert_eq!(space.len(), 30);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt::{self, Write as _};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mtvar_sim::checkpoint::{Checkpoint, Snap};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::ids::Nanos;
use mtvar_sim::machine::Machine;
use mtvar_sim::stats::RunResult;
use mtvar_sim::workload::Workload;
use mtvar_stats::describe::Summary;

pub use mtvar_sim::check::{InvariantKind, Violation};

use crate::checkpoint::{CheckpointKey, CheckpointStore};
use crate::resultcache::{ResultStore, RunKey, RunRecord};
use crate::{CoreError, Result};

/// Design of a multi-run experiment on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunPlan {
    /// Number of perturbed runs (the paper's experiments use 20).
    pub runs: usize,
    /// Transactions measured per run.
    pub transactions: u64,
    /// Transactions executed before measurement starts (cache and lock-state
    /// warmup; the paper warms its database for 10,000 transactions).
    pub warmup_transactions: u64,
    /// Base perturbation seed; run `i` uses
    /// [`derive_run_seed`]`(source_id, base_seed, i)`.
    pub base_seed: u64,
    /// Whether a sweep with warmup simulates it **once**, snapshots, and
    /// forks every perturbed run from the restored snapshot (default), or
    /// re-simulates warmup per run with the perturbation active from cycle
    /// zero (the legacy path, [`RunPlan::with_shared_warmup`]`(false)`).
    ///
    /// Shared warmup is the paper's §3.2.2 protocol: all runs start from one
    /// warmed checkpoint and the per-run perturbation seed takes effect at
    /// measurement start. It also amortizes warmup — a sweep pays it once
    /// instead of `runs` times. The two paths explore different (equally
    /// valid) run spaces, so their results differ; seeds and cache keys are
    /// domain-separated and the legacy path's outputs are unchanged.
    pub shared_warmup: bool,
}

impl RunPlan {
    /// A plan with the paper's default of 20 runs.
    pub fn new(transactions: u64) -> Self {
        RunPlan {
            runs: 20,
            transactions,
            warmup_transactions: 0,
            base_seed: 0,
            shared_warmup: true,
        }
    }

    /// Sets the number of runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_transactions = warmup;
        self
    }

    /// Sets the base perturbation seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Selects between shared-warmup (true, the default) and legacy
    /// per-run-warmup execution — see [`RunPlan::shared_warmup`].
    pub fn with_shared_warmup(mut self, shared: bool) -> Self {
        self.shared_warmup = shared;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.runs == 0 || self.transactions == 0 {
            return Err(CoreError::InvalidExperiment {
                what: "a run plan needs runs >= 1 and transactions >= 1".into(),
            });
        }
        if self
            .warmup_transactions
            .checked_add(self.transactions)
            .is_none()
        {
            return Err(CoreError::InvalidExperiment {
                what: "warmup_transactions + transactions overflows u64".into(),
            });
        }
        Ok(())
    }
}

/// Invariant violations recorded by one run of a space, as reported through
/// the executor's violations channel.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunViolations {
    /// Run index (seed order) within the space.
    pub run: usize,
    /// Uncapped violation count from the run's monitor.
    pub total: u64,
    /// The stored violation reports (the monitor caps these, so
    /// `violations.len()` can be smaller than `total`).
    pub violations: Vec<Violation>,
}

/// The collected space of runs for one configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunSpace {
    results: Vec<RunResult>,
    /// Violation records of the runs that recorded any, ascending by run
    /// index; empty when monitoring was off or every run was clean.
    violations: Vec<RunViolations>,
}

impl RunSpace {
    /// Wraps already-collected results.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if `results` is empty.
    pub fn from_results(results: Vec<RunResult>) -> Result<Self> {
        if results.is_empty() {
            return Err(CoreError::InvalidExperiment {
                what: "a run space needs at least one result".into(),
            });
        }
        Ok(RunSpace {
            results,
            violations: Vec::new(),
        })
    }

    /// The individual run results.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Cycles-per-transaction of every run, in seed order.
    pub fn runtimes(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(RunResult::cycles_per_transaction)
            .collect()
    }

    /// Summary statistics (mean/sd/min/max) of the runtimes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if a runtime is non-finite.
    pub fn summary(&self) -> Result<Summary> {
        Ok(Summary::from_slice(&self.runtimes())?)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the space holds no runs (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Per-run invariant-violation records, ascending by run index. Empty
    /// when monitoring was off — use an executor in strict mode, or a
    /// monitored configuration, to make "empty" mean "verified clean".
    pub fn violations(&self) -> &[RunViolations] {
        &self.violations
    }

    /// Whether no run recorded an invariant violation. `true` is only as
    /// strong as the monitoring that produced this space: an unmonitored
    /// sweep is vacuously clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total invariant violations across all runs (uncapped counts).
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().map(|v| v.total).sum()
    }
}

// ---------------------------------------------------------------------------
// Deterministic seed derivation and fingerprinting
// ---------------------------------------------------------------------------

/// One round of the SplitMix64 output mix: a strong 64-bit finalizer.
#[inline]
fn splitmix_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the perturbation seed of run `run_index` by SplitMix64-style
/// mixing of `(source_id, base_seed, run_index)`.
///
/// `source_id` is a [`config_fingerprint`] (fresh-machine spaces) or a
/// [`machine_fingerprint`] (checkpoint spaces). The derivation is a pure
/// function of its arguments: it does not depend on thread count, scheduling
/// order, or any global state, which is what makes parallel run spaces
/// bit-identical to sequential ones. Mixing the source identity in also
/// decorrelates the seed streams of different experiment arms (or different
/// checkpoints) that share a `base_seed`.
pub fn derive_run_seed(source_id: u64, base_seed: u64, run_index: u64) -> u64 {
    let a = splitmix_mix(source_id ^ 0x6A09_E667_F3BC_C909);
    let b = splitmix_mix(base_seed ^ 0xBB67_AE85_84CA_A73B);
    splitmix_mix(a ^ b.rotate_left(32) ^ run_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Domain separator XORed into a configuration fingerprint to form the
/// `source_id` of a shared-warmup sweep. Shared-warmup runs explore a
/// different space than legacy perturb-from-zero runs of the same plan
/// (perturbation starts at measurement, not cycle zero), so their seed
/// streams and cache keys must not collide — and deriving from the *config*
/// rather than the snapshot keeps seeds independent of snapshot payload
/// details (such as whether the `invariant-monitor` feature compiled a
/// monitor into it).
const SHARED_WARMUP_DOMAIN: u64 = 0x5EED_C4EC_4901_4B75;

/// FNV-1a over the bytes fed through `fmt::Write` — a tiny streaming hasher
/// used to fingerprint configurations and machine states without allocating
/// their full debug representation.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> Self {
        FnvWriter(0xCBF2_9CE4_8422_2325)
    }

    fn finish(&self) -> u64 {
        // One extra mix so low-entropy inputs still avalanche.
        splitmix_mix(self.0)
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(())
    }
}

/// A stable-within-process fingerprint of a machine configuration, used both
/// as the `source_id` for [`derive_run_seed`] and as part of the result-cache
/// key.
///
/// Computed over the configuration's complete `Debug` representation, so any
/// field difference (cache geometry, processor model, noise, perturbation
/// magnitude, ...) yields a different fingerprint.
pub fn config_fingerprint(config: &MachineConfig) -> u64 {
    let mut w = FnvWriter::new();
    let _ = write!(w, "{config:?}");
    w.finish()
}

/// Fingerprints a workload *factory* by probing one fresh instance: its
/// name, thread count, and a prefix of every thread's op stream. This
/// distinguishes workloads that share a name but differ in internal seed or
/// sizing, which must not collide in the result cache. Public so out-of-core
/// layers (the serve daemon's warmup coalescer) can key work by the same
/// identity the executor's caches use. Probing consumes ops, so pass a
/// throwaway instance, never one that will be simulated.
pub fn workload_fingerprint<W: Workload>(probe: &mut W) -> u64 {
    let mut w = FnvWriter::new();
    let _ = write!(w, "{}/{}", probe.name(), probe.thread_count());
    let threads = probe.thread_count();
    for t in 0..threads.min(8) {
        for _ in 0..8 {
            let op = probe.next_op(mtvar_sim::ids::ThreadId(t as u32));
            let _ = write!(w, "{op:?}");
        }
    }
    w.finish()
}

/// Fingerprints a checkpointed machine's complete state (configuration,
/// event queue, caches, scheduler, workload position). Two checkpoints taken
/// at different points of a workload's lifetime hash differently, which keys
/// their cached runs apart and decorrelates their derived seed streams —
/// replacing any need for manual seed blocking between checkpoints.
pub fn machine_fingerprint<W: Workload + fmt::Debug>(machine: &Machine<W>) -> u64 {
    let mut w = FnvWriter::new();
    let _ = write!(w, "{machine:?}");
    w.finish()
}

// ---------------------------------------------------------------------------
// Progress observation
// ---------------------------------------------------------------------------

/// Observer of run-space execution, for live progress reporting.
///
/// All methods have empty defaults; implementations must be cheap and
/// thread-safe — callbacks arrive concurrently from worker threads.
pub trait RunProgress: Send + Sync {
    /// A run left the queue and began simulating.
    fn run_started(&self, run_index: usize) {
        let _ = run_index;
    }

    /// A run finished simulating after `wall` of wall-clock time.
    fn run_completed(&self, run_index: usize, wall: Duration) {
        let _ = (run_index, wall);
    }

    /// A run's measurement is available — called once per run per sweep,
    /// for simulated completions *and* cache hits alike, with the result
    /// that will occupy the run's slot in the returned [`RunSpace`].
    /// Observers that stream per-run data (digests, summaries) hook this;
    /// counters usually don't need it.
    fn run_result(&self, run_index: usize, result: &RunResult) {
        let _ = (run_index, result);
    }

    /// A run was satisfied from the result cache without simulating.
    fn run_cached(&self, run_index: usize) {
        let _ = run_index;
    }

    /// Invariant violations were recorded for a run. Called at most once per
    /// run per sweep, only with a non-empty slice (the monitor caps stored
    /// reports, so the slice length is a lower bound on the run's true
    /// count). Cache hits replay the violations recorded when the run was
    /// first simulated, so a polluted run is reported every time it is
    /// used — never only the first time.
    fn run_violations(&self, run_index: usize, violations: &[Violation]) {
        let _ = (run_index, violations);
    }
}

/// A [`RunProgress`] implementation that counts events and accumulates
/// simulated wall time — the observer used by the examples and benches.
#[derive(Debug, Default)]
pub struct ProgressCounters {
    started: AtomicUsize,
    completed: AtomicUsize,
    cached: AtomicUsize,
    wall_ns: AtomicU64,
    violations: AtomicU64,
    violating_runs: AtomicUsize,
}

impl ProgressCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs that began simulating.
    pub fn started(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }

    /// Runs that finished simulating.
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Runs satisfied from the cache.
    pub fn cached(&self) -> usize {
        self.cached.load(Ordering::Relaxed)
    }

    /// Total wall time spent simulating, summed over workers (exceeds
    /// elapsed time when runs execute concurrently).
    pub fn total_wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed))
    }

    /// Invariant-violation reports observed, summed over runs (counts the
    /// stored reports delivered to [`RunProgress::run_violations`], so this
    /// is a lower bound when a run's monitor capped its storage).
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Runs for which at least one violation was reported.
    pub fn violating_runs(&self) -> usize {
        self.violating_runs.load(Ordering::Relaxed)
    }
}

impl RunProgress for ProgressCounters {
    fn run_started(&self, _run_index: usize) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }

    fn run_completed(&self, _run_index: usize, wall: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.wall_ns
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    fn run_cached(&self, _run_index: usize) {
        self.cached.fetch_add(1, Ordering::Relaxed);
    }

    fn run_violations(&self, _run_index: usize, violations: &[Violation]) {
        self.violations
            .fetch_add(violations.len() as u64, Ordering::Relaxed);
        self.violating_runs.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

// [`RunKey`] and [`RunRecord`] — the cache's key and cacheable unit — live
// in [`crate::resultcache`] alongside their disk encoding.

/// In-memory run-result memo with an optional write-through [`ResultStore`]
/// disk layer: memory misses fall back to disk, inserts go to both, so a
/// restarted process keeps its warm results.
#[derive(Debug, Default)]
struct ResultCache {
    map: Mutex<HashMap<RunKey, RunRecord>>,
    store: Option<Arc<ResultStore>>,
}

impl ResultCache {
    fn with_store(store: Arc<ResultStore>) -> Self {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            store: Some(store),
        }
    }

    fn get(&self, key: &RunKey) -> Option<RunRecord> {
        if let Some(hit) = self.map.lock().expect("cache poisoned").get(key).cloned() {
            return Some(hit);
        }
        let record = self.store.as_ref()?.get(key)?;
        // Promote the disk hit so repeat lookups stay in memory.
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(*key, record.clone());
        Some(record)
    }

    fn insert(&self, key: RunKey, record: RunRecord) {
        if let Some(store) = &self.store {
            store.insert(&key, &record);
        }
        self.map.lock().expect("cache poisoned").insert(key, record);
    }

    fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    fn clear(&self) {
        self.map.lock().expect("cache poisoned").clear();
    }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// Deterministic parallel run-space executor.
///
/// Fans the perturbed runs of a [`RunPlan`] out across OS threads, memoizes
/// completed runs, and reports progress — see the [module docs](self) for
/// the determinism contract. Construction is cheap; the thread pool is
/// scoped per call, while the cache lives for the executor's lifetime (and
/// is shared by clones of the executor).
#[derive(Clone)]
pub struct Executor {
    threads: usize,
    cache: Option<Arc<ResultCache>>,
    checkpoint_store: Option<Arc<CheckpointStore>>,
    progress: Option<Arc<dyn RunProgress>>,
    strict_invariants: bool,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("cached_runs", &self.cache_len())
            .field("has_checkpoint_store", &self.checkpoint_store.is_some())
            .field("has_progress", &self.progress.is_some())
            .field("strict_invariants", &self.strict_invariants)
            .finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor with one worker per available core and caching enabled.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        Executor::with_threads(threads)
    }

    /// A single-threaded executor (the reference sequential path) with
    /// caching enabled.
    pub fn sequential() -> Self {
        Executor::with_threads(1)
    }

    /// An executor with exactly `threads` workers (clamped to >= 1) and
    /// caching enabled.
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            cache: Some(Arc::new(ResultCache::default())),
            checkpoint_store: None,
            progress: None,
            strict_invariants: false,
        }
    }

    /// Number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a progress observer (shared with clones of the executor).
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<dyn RunProgress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Disables the result cache: every run simulates, every time.
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Enables disk spill for the result cache under `dir`: every completed
    /// run is written through to a [`ResultStore`] (crash-safe temp-file +
    /// `fsync` + rename), and in-memory misses fall back to disk — so a
    /// fresh executor pointed at the same directory replays earlier runs,
    /// violations included, instead of re-simulating them. Replaces the
    /// current cache (memoized entries from before this call are dropped).
    #[must_use]
    pub fn with_result_spill(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache = Some(Arc::new(ResultCache::with_store(Arc::new(
            ResultStore::new(dir),
        ))));
        self
    }

    /// The result cache's disk store, if spill is enabled — exposed so
    /// callers (the serve daemon's stats) can drain its warnings and count
    /// spilled entries.
    pub fn result_store(&self) -> Option<&Arc<ResultStore>> {
        self.cache.as_ref().and_then(|c| c.store.as_ref())
    }

    /// Attaches a [`CheckpointStore`] (shared with clones of the executor).
    /// Shared-warmup sweeps then memoize their warmed snapshots — across
    /// sweeps, across thread counts, and (with disk spill) across processes —
    /// and extend the longest stored prefix instead of re-warming from cycle
    /// zero. Without a store, each shared-warmup sweep still warms only once
    /// but the snapshot is dropped when the sweep ends.
    #[must_use]
    pub fn with_checkpoint_store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoint_store = Some(store);
        self
    }

    /// The attached checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&Arc<CheckpointStore>> {
        self.checkpoint_store.as_ref()
    }

    /// Turns on strict invariant mode: every run is simulated with the
    /// invariant monitor enabled (whatever the configuration says), and any
    /// violation anywhere in a sweep fails the whole sweep with
    /// [`CoreError::InvariantViolation`] instead of returning a polluted
    /// [`RunSpace`]. Cached results from *unmonitored* runs are treated as
    /// misses and re-simulated; monitored cache entries are trusted,
    /// including their recorded violations.
    ///
    /// The monitor is enabled on the per-run clone only, after seed
    /// derivation, so strict sweeps of a clean configuration are
    /// bit-identical to non-strict ones (the monitor is read-only and the
    /// configuration fingerprint — hence every derived seed — is unchanged).
    #[must_use]
    pub fn with_invariant_checks(mut self) -> Self {
        self.strict_invariants = true;
        self
    }

    /// Whether strict invariant mode is on.
    pub fn strict_invariants(&self) -> bool {
        self.strict_invariants
    }

    /// Number of run results currently memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.len())
    }

    /// Drops all memoized run results.
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }

    /// Runs `plan` for one configuration. With the default
    /// [`RunPlan::shared_warmup`], warmup is simulated once (unperturbed),
    /// snapshotted, and every perturbed run forks from the restored
    /// snapshot, its perturbation stream starting at measurement start;
    /// with [`RunPlan::with_shared_warmup`]`(false)`, every run builds a
    /// fresh machine and perturbs from cycle zero (the legacy path, whose
    /// seeds and digests are unchanged). Parallel, cached, and bit-identical
    /// to [`run_space`] for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates configuration and deadlock errors from the simulator; in
    /// strict mode, also [`CoreError::InvariantViolation`]. When several
    /// runs fail, the error of the lowest run index is returned
    /// (deterministically, regardless of scheduling).
    pub fn run_space<W, F>(
        &self,
        config: &MachineConfig,
        make_workload: F,
        plan: &RunPlan,
    ) -> Result<RunSpace>
    where
        W: Workload + Snap + Clone + Send + Sync,
        F: Fn() -> W + Sync,
    {
        plan.validate()?;
        // The fingerprint (and hence every derived seed) comes from the
        // caller's configuration; strict mode flips check_invariants on the
        // per-run clone only, below, so it can never change the seeds.
        let config_id = config_fingerprint(config);
        let workload_id = workload_fingerprint(&mut make_workload());
        let perturbation_max = config.perturbation_max_ns;
        if plan.shared_warmup && plan.warmup_transactions > 0 {
            let snapshot = self.warm_checkpoint(
                config,
                &make_workload,
                plan.base_seed,
                plan.warmup_transactions,
                None,
            )?;
            // Seeds stay a pure function of the *caller's* configuration —
            // not of the snapshot bytes, which differ between feature
            // builds — so shared-warmup sweeps are reproducible everywhere.
            // The domain constant keeps them decorrelated from (and the
            // cache disjoint with) the legacy path's seed stream.
            let source_id = config_id ^ SHARED_WARMUP_DOMAIN;
            // Decode once, fork per run: the template's cache arrays are
            // copy-on-write, so each fork clones pointers, not payloads.
            // Decoding here (rather than reusing the machine warm_checkpoint
            // just simulated) leaves the decoder's resident-line seed on
            // every array, which makes each fork's first-write
            // materialization a single sequential pass. The decode itself
            // spreads the per-node cache sections across this executor's
            // thread budget (bit-identical for any thread count).
            let template: Machine<W> = Machine::restore_with_threads(&snapshot, self.threads)?;
            return self.execute(plan, source_id, workload_id, |seed| {
                let mut machine = template.fork();
                machine.set_perturbation(perturbation_max, seed);
                if self.strict_invariants {
                    machine.enable_invariant_checks();
                }
                let result = machine.run_transactions(plan.transactions)?;
                Ok(extract_record(result, &mut machine))
            });
        }
        self.execute(plan, config_id, workload_id, |seed| {
            let mut cfg = config.clone().with_perturbation(perturbation_max, seed);
            if self.strict_invariants {
                cfg = cfg.with_invariant_checks();
            }
            let mut machine = Machine::new(cfg, make_workload())?;
            if plan.warmup_transactions > 0 {
                machine.run_transactions(plan.warmup_transactions)?;
            }
            let result = machine.run_transactions(plan.transactions)?;
            Ok(extract_record(result, &mut machine))
        })
    }

    /// Runs `plan` from a checkpoint: every run restarts from the identical
    /// machine state, differing only in derived perturbation seed — the
    /// paper's space-variability protocol, parallel and cached.
    ///
    /// Seeds derive from the checkpoint's [`machine_fingerprint`], so
    /// different checkpoints of one workload get decorrelated seed streams
    /// and distinct cache entries without any manual seed blocking.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (lowest failing run index wins); in
    /// strict mode, also [`CoreError::InvariantViolation`]. Note that a
    /// checkpoint taken from a machine whose monitor already holds findings
    /// replays those findings into every run of the space.
    pub fn run_space_from_checkpoint<W>(
        &self,
        checkpoint: &Machine<W>,
        plan: &RunPlan,
    ) -> Result<RunSpace>
    where
        W: Workload + Clone + Send + Sync + fmt::Debug,
    {
        plan.validate()?;
        // Fingerprint the caller's checkpoint before strict mode touches the
        // per-run clones, for the same seed-stability reason as run_space.
        let state_id = machine_fingerprint(checkpoint);
        self.execute(plan, state_id, 0, |seed| {
            let mut machine = checkpoint.with_perturbation_seed(seed);
            if self.strict_invariants {
                machine.enable_invariant_checks();
            }
            if plan.warmup_transactions > 0 {
                machine.run_transactions(plan.warmup_transactions)?;
            }
            let result = machine.run_transactions(plan.transactions)?;
            Ok(extract_record(result, &mut machine))
        })
    }

    /// Produces the warmed snapshot for `(config, workload, base_seed,
    /// warmup)`, consulting the attached [`CheckpointStore`] (if any) before
    /// simulating. Warmup always runs **unperturbed** — the §3.3 timing
    /// perturbation belongs to the measured region, and neutralizing it here
    /// lets one snapshot serve every perturbation magnitude and seed — and
    /// the store key uses that neutralized configuration's fingerprint.
    ///
    /// On a store miss, the deepest stored shorter-warmup snapshot of the
    /// same `(config, workload, base_seed)` is extended instead of warming
    /// from cycle zero; extension is bit-identical to a straight warmup
    /// because warmup-region state carries no measurement counters. The
    /// caller may pass its own `(warmed_transactions, checkpoint)` candidate
    /// in `from` (how [`timesample`](crate::timesample) chains sweep
    /// positions without a store); whichever prefix is deepest wins. The
    /// result is inserted back into the store, and returned behind an `Arc`
    /// so a store hit shares the cached allocation instead of copying the
    /// payload.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from warmup and
    /// [`CoreError::Sim`]-wrapped decode failures from a `from` candidate
    /// (store-resident snapshots are validated — and corrupt entries
    /// evicted — by the store itself).
    pub fn warm_checkpoint<W, F>(
        &self,
        config: &MachineConfig,
        make_workload: &F,
        base_seed: u64,
        warmup: u64,
        from: Option<(u64, &Checkpoint)>,
    ) -> Result<Arc<Checkpoint>>
    where
        W: Workload + Snap,
        F: Fn() -> W,
    {
        let mut warm_cfg = config.clone().with_perturbation(0, 0);
        if self.strict_invariants {
            // Strict warmup still watches for violations; the monitored
            // configuration fingerprints differently, so monitored and
            // unmonitored snapshots never alias in the store.
            warm_cfg = warm_cfg.with_invariant_checks();
        }
        let key = CheckpointKey {
            config: config_fingerprint(&warm_cfg),
            workload: workload_fingerprint(&mut make_workload()),
            base_seed,
            warmup,
        };
        let store = self.checkpoint_store.as_ref();
        if let Some(hit) = store.and_then(|s| s.get(&key)) {
            return Ok(hit);
        }
        // Deepest usable prefix: the store's longest shorter-warmup entry
        // vs. the caller-supplied candidate.
        let mut prefix: Option<(u64, Arc<Checkpoint>)> = store.and_then(|s| s.longest_prefix(&key));
        if let Some((done, ck)) = from {
            if done <= warmup && prefix.as_ref().is_none_or(|(w, _)| done > *w) {
                prefix = Some((done, Arc::new(ck.clone())));
            }
        }
        // Counters are normalized before snapshotting so the bytes — and the
        // fingerprint that seeds `run_space_from_snapshot` — depend only on
        // the warmed architectural state, never on whether it was reached in
        // one warmup call or by extending a stored prefix.
        let snapshot = match prefix {
            Some((done, ck)) if done == warmup => ck,
            Some((done, ck)) => {
                let mut machine: Machine<W> = Machine::restore_with_threads(&ck, self.threads)?;
                machine.run_transactions(warmup - done)?;
                machine.normalize_measurement();
                Arc::new(machine.snapshot())
            }
            None => {
                let mut machine = Machine::new(warm_cfg, make_workload())?;
                machine.run_transactions(warmup)?;
                machine.normalize_measurement();
                Arc::new(machine.snapshot())
            }
        };
        if let Some(s) = store {
            s.insert(key, Arc::clone(&snapshot));
        }
        Ok(snapshot)
    }

    /// Runs `plan` with every run forked from `snapshot`: restore, switch
    /// the perturbation on (`perturbation_max_ns`, derived seed), then
    /// measure. This is the fork step of the shared-warmup protocol,
    /// exposed for callers that manage snapshots themselves (the
    /// [`timesample`](crate::timesample) sweeps); [`Executor::run_space`]
    /// composes it with [`Executor::warm_checkpoint`] automatically.
    ///
    /// Seeds derive from the snapshot's content fingerprint, so different
    /// snapshots get decorrelated seed streams and distinct cache entries.
    /// Any `plan.warmup_transactions` run unperturbed *after* the restore
    /// and before measurement (extra per-run settling on top of whatever
    /// warmup the snapshot already embodies).
    ///
    /// # Errors
    ///
    /// Propagates decode and simulator errors (lowest failing run index
    /// wins); in strict mode, also [`CoreError::InvariantViolation`].
    pub fn run_space_from_snapshot<W>(
        &self,
        snapshot: &Checkpoint,
        perturbation_max_ns: Nanos,
        plan: &RunPlan,
    ) -> Result<RunSpace>
    where
        W: Workload + Snap + Clone + Send + Sync,
    {
        plan.validate()?;
        let source_id = snapshot.fingerprint();
        // Decode once, fork per run (copy-on-write cache arrays) — the
        // restore cost is paid once per snapshot instead of once per run,
        // and the decode fans the per-node sections across the executor's
        // thread budget.
        let template: Machine<W> = Machine::restore_with_threads(snapshot, self.threads)?;
        self.execute(plan, source_id, 0, |seed| {
            let mut machine = template.fork();
            if self.strict_invariants {
                machine.enable_invariant_checks();
            }
            if plan.warmup_transactions > 0 {
                machine.run_transactions(plan.warmup_transactions)?;
            }
            machine.set_perturbation(perturbation_max_ns, seed);
            let result = machine.run_transactions(plan.transactions)?;
            Ok(extract_record(result, &mut machine))
        })
    }

    /// Shared execution core: derive seeds, satisfy runs from the cache
    /// (replaying their recorded violations), fan the misses out over the
    /// pool, reassemble in run-index order, then resolve errors and
    /// violations with the lowest run index winning.
    fn execute<J>(
        &self,
        plan: &RunPlan,
        source_id: u64,
        workload_id: u64,
        job: J,
    ) -> Result<RunSpace>
    where
        J: Fn(u64) -> Result<RunRecord> + Sync,
    {
        let keys: Vec<RunKey> = (0..plan.runs)
            .map(|i| RunKey {
                source: source_id,
                workload: workload_id,
                seed: derive_run_seed(source_id, plan.base_seed, i as u64),
                warmup: plan.warmup_transactions,
                transactions: plan.transactions,
            })
            .collect();

        let mut slots: Vec<Option<Result<RunRecord>>> = (0..plan.runs).map(|_| None).collect();
        let mut misses: Vec<usize> = Vec::with_capacity(plan.runs);
        for (i, key) in keys.iter().enumerate() {
            match self.cache.as_ref().and_then(|c| c.get(key)) {
                // A strict executor cannot vouch for a run that was cached
                // without a monitor watching it; treat it as a miss.
                Some(hit) if !self.strict_invariants || hit.monitored => {
                    if let Some(p) = &self.progress {
                        p.run_cached(i);
                        if !hit.violations.is_empty() {
                            p.run_violations(i, &hit.violations);
                        }
                        p.run_result(i, &hit.result);
                    }
                    slots[i] = Some(Ok(hit));
                }
                _ => misses.push(i),
            }
        }

        let outcomes = run_on_pool(self.threads, &misses, |run_index| {
            if let Some(p) = &self.progress {
                p.run_started(run_index);
            }
            let t0 = Instant::now();
            let outcome = job(keys[run_index].seed);
            if let (Ok(record), Some(p)) = (&outcome, &self.progress) {
                p.run_completed(run_index, t0.elapsed());
                if !record.violations.is_empty() {
                    p.run_violations(run_index, &record.violations);
                }
                p.run_result(run_index, &record.result);
            }
            outcome
        });

        for (&i, outcome) in misses.iter().zip(outcomes) {
            if let (Ok(record), Some(c)) = (&outcome, &self.cache) {
                c.insert(keys[i], record.clone());
            }
            slots[i] = Some(outcome);
        }

        // Single ascending pass so the winning error — sim failure or strict
        // violation alike — is the one of the lowest run index, no matter
        // how the pool scheduled the work.
        let mut results = Vec::with_capacity(plan.runs);
        let mut violations = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let record = slot.expect("slot filled")?;
            if record.total_violations > 0 {
                if self.strict_invariants {
                    return Err(CoreError::InvariantViolation {
                        run: i,
                        report: record.violations,
                    });
                }
                violations.push(RunViolations {
                    run: i,
                    total: record.total_violations,
                    violations: record.violations,
                });
            }
            results.push(record.result);
        }
        let mut space = RunSpace::from_results(results)?;
        space.violations = violations;
        Ok(space)
    }
}

/// Pulls the invariant findings out of a finished machine and packages them
/// with its measurement as the executor's cacheable unit.
fn extract_record<W: Workload>(result: RunResult, machine: &mut Machine<W>) -> RunRecord {
    let monitored = machine.invariant_monitor().is_some();
    let total_violations = machine
        .invariant_monitor()
        .map_or(0, mtvar_sim::check::InvariantMonitor::total_violations);
    let violations = machine.take_invariant_violations();
    RunRecord {
        result,
        monitored,
        total_violations,
        violations,
    }
}

/// Executes `job` for every element of `items` on a scoped work-stealing
/// pool and returns the outcomes in `items` order.
///
/// Each worker owns a deque preloaded round-robin; workers pop locally from
/// the front and steal from the back of the fullest other queue when empty.
/// Ordering of *execution* is nondeterministic; ordering of *results* is by
/// construction the input order, which is what keeps parallel run spaces
/// bit-identical to sequential ones.
fn run_on_pool<T, J>(threads: usize, items: &[usize], job: J) -> Vec<T>
where
    T: Send + Sync,
    J: Fn(usize) -> T + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(|&i| job(i)).collect();
    }

    // Slot k receives the outcome of items[k].
    let slots: Vec<OnceLock<T>> = (0..items.len()).map(|_| OnceLock::new()).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, queue) in (0..items.len()).zip((0..workers).cycle()) {
        queues[queue].lock().expect("queue poisoned").push_back(k);
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let queues = &queues;
            let job = &job;
            scope.spawn(move || loop {
                // Local work first (front of own deque)...
                let mut next = queues[w].lock().expect("queue poisoned").pop_front();
                if next.is_none() {
                    // ...then steal from the back of the fullest other deque.
                    let victim = (0..workers)
                        .filter(|&v| v != w)
                        .max_by_key(|&v| queues[v].lock().expect("queue poisoned").len());
                    if let Some(v) = victim {
                        next = queues[v].lock().expect("queue poisoned").pop_back();
                    }
                }
                match next {
                    Some(k) => {
                        let outcome = job(items[k]);
                        let _ = slots[k].set(outcome);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("all jobs completed"))
        .collect()
}

/// Runs `plan` on a fresh machine per run, sequentially: build with the
/// derived perturbation seed, warm up, measure.
///
/// This is the reference single-threaded path; [`Executor::run_space`]
/// produces bit-identical results on any thread count and adds caching and
/// progress reporting. Prefer the executor for multi-run work — this free
/// function remains for small spaces and as the determinism baseline.
///
/// # Errors
///
/// Propagates configuration and deadlock errors from the simulator.
pub fn run_space<W, F>(config: &MachineConfig, make_workload: F, plan: &RunPlan) -> Result<RunSpace>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W + Sync,
{
    Executor::sequential()
        .without_cache()
        .run_space(config, make_workload, plan)
}

/// Runs `plan` from a checkpoint, sequentially: every run restarts from the
/// identical machine state, differing only in derived perturbation seed —
/// the paper's space-variability protocol.
///
/// [`Executor::run_space_from_checkpoint`] is the parallel, cached form;
/// both produce bit-identical results.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_space_from_checkpoint<W>(checkpoint: &Machine<W>, plan: &RunPlan) -> Result<RunSpace>
where
    W: Workload + Clone + Send + Sync + fmt::Debug,
{
    Executor::sequential()
        .without_cache()
        .run_space_from_checkpoint(checkpoint, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::workload::SharingWorkload;

    fn small_config() -> MachineConfig {
        MachineConfig::hpca2003()
            .with_cpus(4)
            .with_perturbation(4, 0)
    }

    fn small_workload() -> SharingWorkload {
        SharingWorkload::new(8, 42, 40, 4096, 10)
    }

    #[test]
    fn run_space_collects_all_runs() {
        let plan = RunPlan::new(30).with_runs(5);
        let space = run_space(&small_config(), small_workload, &plan).unwrap();
        assert_eq!(space.len(), 5);
        let rt = space.runtimes();
        assert!(rt.iter().all(|&r| r > 0.0));
        let s = space.summary().unwrap();
        assert_eq!(s.n(), 5);
    }

    #[test]
    fn perturbed_runs_differ() {
        let plan = RunPlan::new(40).with_runs(6).with_warmup(10);
        let space = run_space(&small_config(), small_workload, &plan).unwrap();
        let rt = space.runtimes();
        assert!(
            rt.iter().any(|&r| (r - rt[0]).abs() > 1e-9),
            "perturbed runs should differ: {rt:?}"
        );
    }

    #[test]
    fn same_plan_reproduces_exactly() {
        let plan = RunPlan::new(25).with_runs(3);
        let a = run_space(&small_config(), small_workload, &plan).unwrap();
        let b = run_space(&small_config(), small_workload, &plan).unwrap();
        assert_eq!(a.runtimes(), b.runtimes());
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let plan = RunPlan::new(30).with_runs(6);
        let seq = run_space(&small_config(), small_workload, &plan).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = Executor::with_threads(threads)
                .run_space(&small_config(), small_workload, &plan)
                .unwrap();
            assert_eq!(seq, par, "thread count {threads} changed results");
        }
    }

    #[test]
    fn cache_satisfies_repeat_invocations() {
        let progress = Arc::new(ProgressCounters::new());
        let exec = Executor::with_threads(2).with_progress(progress.clone());
        let plan = RunPlan::new(20).with_runs(4);
        let a = exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(progress.completed(), 4);
        assert_eq!(progress.cached(), 0);
        assert_eq!(exec.cache_len(), 4);

        let b = exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(a, b, "cached results must be identical");
        assert_eq!(progress.completed(), 4, "no re-simulation on second call");
        assert_eq!(progress.cached(), 4);

        // A longer plan re-uses nothing (transactions are part of the key)...
        let longer = RunPlan::new(21).with_runs(4);
        let _ = exec
            .run_space(&small_config(), small_workload, &longer)
            .unwrap();
        assert_eq!(progress.completed(), 8);

        // ...and an extended run count re-uses the shared prefix.
        let extended = plan.with_runs(6);
        let c = exec
            .run_space(&small_config(), small_workload, &extended)
            .unwrap();
        assert_eq!(progress.cached(), 8, "first 4 runs of the extension hit");
        assert_eq!(&c.runtimes()[..4], &a.runtimes()[..], "prefix must match");

        exec.clear_cache();
        assert_eq!(exec.cache_len(), 0);
    }

    #[test]
    fn cache_distinguishes_workload_parameters() {
        let progress = Arc::new(ProgressCounters::new());
        let exec = Executor::sequential().with_progress(progress.clone());
        let plan = RunPlan::new(15).with_runs(2);
        let a = exec
            .run_space(
                &small_config(),
                || SharingWorkload::new(8, 1, 40, 4096, 10),
                &plan,
            )
            .unwrap();
        let b = exec
            .run_space(
                &small_config(),
                || SharingWorkload::new(8, 2, 40, 4096, 10),
                &plan,
            )
            .unwrap();
        assert_eq!(
            progress.cached(),
            0,
            "different workload seeds must not collide"
        );
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let id = config_fingerprint(&small_config());
        let seeds: Vec<u64> = (0..64).map(|i| derive_run_seed(id, 0, i)).collect();
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "seed collisions within a plan");
        assert_eq!(
            seeds,
            (0..64)
                .map(|i| derive_run_seed(id, 0, i))
                .collect::<Vec<_>>()
        );
        // Different arms (config ids) get decorrelated streams.
        let other = config_fingerprint(&small_config().with_cpus(8));
        assert_ne!(derive_run_seed(other, 0, 0), seeds[0]);
    }

    #[test]
    fn checkpoint_space_starts_from_identical_state() {
        let mut m = Machine::new(small_config(), small_workload()).unwrap();
        m.run_transactions(20).unwrap();
        let plan = RunPlan::new(30).with_runs(4);
        let a = run_space_from_checkpoint(&m, &plan).unwrap();
        let b = run_space_from_checkpoint(&m, &plan).unwrap();
        assert_eq!(a.runtimes(), b.runtimes());
        assert_eq!(a.len(), 4);
        // The parallel executor agrees bit-for-bit.
        let c = Executor::with_threads(4)
            .run_space_from_checkpoint(&m, &plan)
            .unwrap();
        assert_eq!(a.runtimes(), c.runtimes());
    }

    #[test]
    fn checkpoints_at_different_positions_decorrelate() {
        let mut m = Machine::new(small_config(), small_workload()).unwrap();
        m.run_transactions(10).unwrap();
        let early = machine_fingerprint(&m);
        m.run_transactions(10).unwrap();
        let late = machine_fingerprint(&m);
        assert_ne!(
            early, late,
            "advancing the machine must change its fingerprint"
        );
    }

    #[test]
    fn plan_validation() {
        let bad = RunPlan::new(10).with_runs(0);
        assert!(run_space(&small_config(), small_workload, &bad).is_err());
        let bad2 = RunPlan::new(0);
        assert!(run_space(&small_config(), small_workload, &bad2).is_err());
        // warmup + transactions must not wrap.
        let bad3 = RunPlan::new(u64::MAX).with_warmup(1);
        let err = run_space(&small_config(), small_workload, &bad3).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got {err}");
        assert!(RunSpace::from_results(vec![]).is_err());
    }

    /// A faulted configuration: the monitor is on and an illegal Exclusive
    /// state (under MOSI) is planted after the 12th commit of every run, so
    /// every run of a space records at least one violation.
    fn faulted_config() -> MachineConfig {
        use mtvar_sim::config::FaultSpec;
        use mtvar_sim::mem::CoherenceState;
        small_config()
            .with_invariant_checks()
            .with_fault(FaultSpec::coherence(
                12,
                1,
                0xFA11,
                CoherenceState::Exclusive,
            ))
    }

    #[test]
    fn observing_mode_reports_violations_and_marks_space() {
        let progress = Arc::new(ProgressCounters::new());
        let exec = Executor::with_threads(2)
            .without_cache()
            .with_progress(progress.clone());
        let plan = RunPlan::new(30).with_runs(3);
        let space = exec
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap();
        assert!(!space.is_clean());
        assert!(space.total_violations() > 0);
        assert_eq!(space.violations().len(), 3, "every run hits the fault");
        assert!(space.violations().windows(2).all(|w| w[0].run < w[1].run));
        assert_eq!(progress.violating_runs(), 3);
        assert!(progress.violations() >= 3);
    }

    #[test]
    fn cache_hits_replay_violations() {
        let progress = Arc::new(ProgressCounters::new());
        let exec = Executor::with_threads(2).with_progress(progress.clone());
        let plan = RunPlan::new(30).with_runs(3);
        let a = exec
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(progress.violating_runs(), 3);
        let b = exec
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(progress.cached(), 3, "second sweep is all cache hits");
        assert_eq!(
            progress.violating_runs(),
            6,
            "cache hits must replay violations, not drop them"
        );
        assert_eq!(a.violations(), b.violations());
        assert_eq!(a, b);
    }

    #[test]
    fn strict_mode_fails_with_lowest_violating_run() {
        let exec = Executor::with_threads(4).with_invariant_checks();
        assert!(exec.strict_invariants());
        let plan = RunPlan::new(30).with_runs(5);
        let err = exec
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap_err();
        match err {
            CoreError::InvariantViolation { run, report } => {
                assert_eq!(run, 0, "lowest violating index wins");
                assert!(!report.is_empty());
            }
            other => panic!("expected InvariantViolation, got {other}"),
        }
    }

    #[test]
    fn strict_mode_forces_monitoring_without_config_flag() {
        use mtvar_sim::config::FaultSpec;
        use mtvar_sim::mem::CoherenceState;
        // The config does NOT request invariant checks; strict mode must
        // monitor anyway and catch the planted fault.
        let cfg = small_config().with_fault(FaultSpec::coherence(
            12,
            1,
            0xFA11,
            CoherenceState::Exclusive,
        ));
        let exec = Executor::sequential().with_invariant_checks();
        let plan = RunPlan::new(30).with_runs(2);
        let err = exec.run_space(&cfg, small_workload, &plan).unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolation { run: 0, .. }));
    }

    #[test]
    fn strict_mode_refuses_unmonitored_cache_entries() {
        let progress = Arc::new(ProgressCounters::new());
        let observing = Executor::with_threads(2).with_progress(progress.clone());
        let plan = RunPlan::new(25).with_runs(3);
        let a = observing
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(progress.completed(), 3);

        // Same cache, strict clone. With the invariant-monitor feature
        // compiled in, the entries were monitored and are trusted; without
        // it they were not, and strict re-simulates every one.
        let strict = observing.clone().with_invariant_checks();
        let b = strict
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(a.results(), b.results(), "strict must not change results");
        assert!(b.is_clean());
        if cfg!(feature = "invariant-monitor") {
            assert_eq!(progress.completed(), 3, "monitored entries are trusted");
            assert_eq!(progress.cached(), 3);
        } else {
            assert_eq!(progress.completed(), 6, "unmonitored entries re-simulate");
            assert_eq!(progress.cached(), 0);
        }
    }

    #[test]
    fn strict_clean_sweep_is_bit_identical_to_observing() {
        let plan = RunPlan::new(30).with_runs(4).with_warmup(5);
        let observing = Executor::with_threads(3)
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let strict = Executor::with_threads(3)
            .with_invariant_checks()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(observing.results(), strict.results());
        assert!(strict.is_clean());
    }

    #[test]
    fn checkpoint_space_reports_violations_in_both_modes() {
        use mtvar_sim::config::FaultSpec;
        use mtvar_sim::mem::CoherenceState;
        let mut m = Machine::new(faulted_config(), small_workload()).unwrap();
        // Checkpoint before the fault's trigger commit so it fires inside
        // each run of the space, not before it.
        m.run_transactions(5).unwrap();
        assert!(m.invariant_violations().is_empty());
        let plan = RunPlan::new(30).with_runs(2);

        let space = Executor::with_threads(2)
            .without_cache()
            .run_space_from_checkpoint(&m, &plan)
            .unwrap();
        assert_eq!(space.violations().len(), 2);

        let err = Executor::with_threads(2)
            .with_invariant_checks()
            .run_space_from_checkpoint(&m, &plan)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolation { run: 0, .. }));

        // Strict also monitors checkpoints built without a monitor.
        let cfg = small_config().with_fault(FaultSpec::coherence(
            12,
            1,
            0xFA11,
            CoherenceState::Exclusive,
        ));
        let mut unmonitored = Machine::new(cfg, small_workload()).unwrap();
        unmonitored.run_transactions(5).unwrap();
        let err = Executor::sequential()
            .with_invariant_checks()
            .run_space_from_checkpoint(&unmonitored, &plan)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvariantViolation { run: 0, .. }));
    }

    #[test]
    fn pool_preserves_input_order_under_stealing() {
        for threads in [1, 2, 4, 16] {
            let items: Vec<usize> = (0..97).collect();
            let out = run_on_pool(threads, &items, |i| i * 3);
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shared_warmup_is_bit_identical_across_thread_counts() {
        let plan = RunPlan::new(25).with_runs(6).with_warmup(15);
        assert!(plan.shared_warmup, "shared warmup is the default");
        let seq = Executor::sequential()
            .without_cache()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        for threads in [2, 4, 8] {
            let par = Executor::with_threads(threads)
                .without_cache()
                .run_space(&small_config(), small_workload, &plan)
                .unwrap();
            assert_eq!(seq, par, "thread count {threads} changed results");
        }
    }

    #[test]
    fn shared_warmup_differs_from_legacy_but_both_reproduce() {
        let shared = RunPlan::new(25).with_runs(5).with_warmup(15);
        let legacy = shared.with_shared_warmup(false);
        let exec = Executor::sequential().without_cache();
        let a = exec
            .run_space(&small_config(), small_workload, &shared)
            .unwrap();
        let b = exec
            .run_space(&small_config(), small_workload, &legacy)
            .unwrap();
        // Different protocols (perturbed vs unperturbed warmup, disjoint seed
        // domains) — but each is individually reproducible.
        assert_ne!(a.runtimes(), b.runtimes());
        let a2 = exec
            .run_space(&small_config(), small_workload, &shared)
            .unwrap();
        let b2 = exec
            .run_space(&small_config(), small_workload, &legacy)
            .unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn legacy_path_matches_manual_per_run_simulation() {
        let plan = RunPlan::new(20)
            .with_runs(4)
            .with_warmup(10)
            .with_shared_warmup(false);
        let space = Executor::sequential()
            .without_cache()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let config_id = config_fingerprint(&small_config());
        for (i, &rt) in space.runtimes().iter().enumerate() {
            let seed = derive_run_seed(config_id, plan.base_seed, i as u64);
            let cfg = small_config().with_perturbation(4, seed);
            let mut m = Machine::new(cfg, small_workload()).unwrap();
            m.run_transactions(10).unwrap();
            let result = m.run_transactions(20).unwrap();
            assert_eq!(result.cycles_per_transaction(), rt, "run {i} diverged");
        }
    }

    #[test]
    fn checkpoint_store_does_not_change_results() {
        let plan = RunPlan::new(25).with_runs(5).with_warmup(20);
        let bare = Executor::sequential()
            .without_cache()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let store = Arc::new(CheckpointStore::new());
        let stored_exec = Executor::with_threads(4)
            .without_cache()
            .with_checkpoint_store(store.clone());
        let stored = stored_exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(bare, stored, "the store must be invisible to statistics");
        assert_eq!(store.len(), 1, "one warmed snapshot memoized");
        // Second sweep hits the stored snapshot; results stay identical.
        let again = stored_exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(bare, again);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn warm_checkpoint_prefix_extension_is_bit_identical() {
        let store = Arc::new(CheckpointStore::new());
        let exec = Executor::sequential().with_checkpoint_store(store.clone());
        // Deep warmup computed from scratch by a storeless executor...
        let direct = Executor::sequential()
            .warm_checkpoint(&small_config(), &small_workload, 0, 30, None)
            .unwrap();
        // ...vs seeded store: warm 10 first, then extend 10 -> 30.
        let shallow = exec
            .warm_checkpoint(&small_config(), &small_workload, 0, 10, None)
            .unwrap();
        let extended = exec
            .warm_checkpoint(&small_config(), &small_workload, 0, 30, None)
            .unwrap();
        assert_ne!(shallow.fingerprint(), extended.fingerprint());
        assert_eq!(
            direct.fingerprint(),
            extended.fingerprint(),
            "extending a shorter warmup must be bit-identical to a straight warmup"
        );
        assert_eq!(store.len(), 2);
        // The caller-supplied `from` candidate chains without a store.
        let chained = Executor::sequential()
            .warm_checkpoint(
                &small_config(),
                &small_workload,
                0,
                30,
                Some((10, shallow.as_ref())),
            )
            .unwrap();
        assert_eq!(chained.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn strict_clean_shared_warmup_matches_observing() {
        let plan = RunPlan::new(25).with_runs(4).with_warmup(15);
        let observing = Executor::sequential()
            .without_cache()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let strict = Executor::sequential()
            .without_cache()
            .with_invariant_checks()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(observing, strict, "the monitor must be read-only");
    }

    #[test]
    fn result_spill_survives_a_fresh_executor() {
        let dir = std::env::temp_dir().join(format!("mtvar-runspace-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = RunPlan::new(20).with_runs(4).with_warmup(5);
        let baseline = Executor::sequential()
            .without_cache()
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        {
            let progress = Arc::new(ProgressCounters::new());
            let exec = Executor::with_threads(2)
                .with_result_spill(&dir)
                .with_progress(progress.clone());
            assert!(exec.result_store().is_some());
            let first = exec
                .run_space(&small_config(), small_workload, &plan)
                .unwrap();
            assert_eq!(first, baseline);
            assert_eq!(progress.completed(), 4);
            assert_eq!(exec.result_store().unwrap().len_on_disk(), 4);
        }
        // A fresh executor (fresh process, in spirit) replays from disk.
        let progress = Arc::new(ProgressCounters::new());
        let fresh = Executor::with_threads(2)
            .with_result_spill(&dir)
            .with_progress(progress.clone());
        let replayed = fresh
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(replayed, baseline, "spilled results must be bit-identical");
        assert_eq!(progress.completed(), 0, "nothing re-simulates");
        assert_eq!(progress.cached(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_spill_replays_violations() {
        let dir =
            std::env::temp_dir().join(format!("mtvar-runspace-spill-viol-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = RunPlan::new(30).with_runs(2);
        let first = Executor::sequential()
            .with_result_spill(&dir)
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap();
        assert!(!first.is_clean());
        let progress = Arc::new(ProgressCounters::new());
        let fresh = Executor::sequential()
            .with_result_spill(&dir)
            .with_progress(progress.clone());
        let replayed = fresh
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap();
        assert_eq!(progress.cached(), 2);
        assert_eq!(
            first.violations(),
            replayed.violations(),
            "disk hits must replay violations, not drop them"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_result_fires_for_completions_and_cache_hits() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Digests(StdMutex<Vec<(usize, u64)>>);
        impl RunProgress for Digests {
            fn run_result(&self, run_index: usize, result: &RunResult) {
                self.0
                    .lock()
                    .unwrap()
                    .push((run_index, crate::golden::run_digest(result)));
            }
        }
        let observer = Arc::new(Digests::default());
        let exec =
            Executor::with_threads(2).with_progress(observer.clone() as Arc<dyn RunProgress>);
        let plan = RunPlan::new(20).with_runs(3);
        let space = exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let expected: Vec<(usize, u64)> = space
            .results()
            .iter()
            .enumerate()
            .map(|(i, r)| (i, crate::golden::run_digest(r)))
            .collect();
        let mut seen = observer.0.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, expected, "simulated completions stream results");
        observer.0.lock().unwrap().clear();
        // Second sweep: all cache hits, same digests.
        let _ = exec
            .run_space(&small_config(), small_workload, &plan)
            .unwrap();
        let mut seen = observer.0.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, expected, "cache hits stream identical results");
    }

    #[test]
    fn shared_warmup_surfaces_warmup_faults_in_strict_mode() {
        // The fault fires at commit 12, inside the 15-transaction shared
        // warmup; a strict sweep must still catch it even though the
        // violation happens before any run's measurement starts.
        let plan = RunPlan::new(20).with_runs(3).with_warmup(15);
        let err = Executor::sequential()
            .with_invariant_checks()
            .run_space(&faulted_config(), small_workload, &plan)
            .unwrap_err();
        assert!(
            matches!(err, CoreError::InvariantViolation { run: 0, .. }),
            "expected a strict violation failure, got {err:?}"
        );
    }
}
