//! Sampling methodologies as first-class estimators: drive the checkpoint
//! substrate to measure only *sampled* warmup positions, and score each
//! methodology with the paper's own yardsticks.
//!
//! The source paper estimates cycles-per-transaction from full multi-run
//! experiments; modern practice samples instead. This module wires the
//! estimator layer of [`mtvar_stats::sampling`] — simple-random/stratified
//! position sampling, ranked-set sampling, and live (adaptive) sampling —
//! onto the [`Executor`] + [`CheckpointStore`](crate::checkpoint) substrate
//! from PR 4/5:
//!
//! * A [`SamplingStudy`] defines a **position frame**: `positions` starting
//!   points spaced `spacing` warmup transactions apart through the
//!   workload's lifetime. Measuring position `p` means warming to depth
//!   `(p+1)·spacing` (memoized and prefix-extended by the store), forking
//!   the plan's perturbed runs from the snapshot, and averaging their
//!   cycles-per-transaction. The estimand is the frame's population mean —
//!   the same quantity a §5.2 full sweep averages.
//! * A [`StudyOracle`] adapts the study to the
//!   [`PositionOracle`] interface, charging each measurement the simulated
//!   cycles it would have cost standalone (incremental warmup plus measured
//!   run cycles) while the store memoizes the actual work.
//! * [`evaluate`] scores a set of [`Method`]s against full-run ground truth
//!   (a census of the frame) by empirical CI coverage, wrong-conclusion
//!   ratio versus the true direction (reusing [`crate::wcr`]), absolute
//!   error, and simulated-cycle cost — emitting a comparison
//!   [`Table`].
//!
//! See the *Sampling methodologies* chapter of `EXPERIMENTS.md` for the
//! handbook treatment: assumptions, knobs, and when each estimator misleads.

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use mtvar_sim::checkpoint::{Checkpoint, Snap};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::workload::Workload;
use mtvar_stats::sampling::live::{live_sample, LiveDesign};
use mtvar_stats::sampling::ranked_set::{ranked_set_sample, RankedSetDesign};
use mtvar_stats::sampling::srs::{position_sample, PositionDesign};
use mtvar_stats::sampling::{Estimate, Measurement, PositionOracle, SamplingError};

use crate::checkpoint::CheckpointStore;
use crate::report::Table;
use crate::runspace::{Executor, RunPlan};
use crate::wcr::{wrong_conclusion_ratio, Superior};
use crate::{CoreError, Result};

/// Domain separator for proxy-probe perturbation seeds, so a ranked-set
/// proxy run never shares a perturbation stream with a full measurement of
/// the same position.
const PROXY_SEED_SALT: u64 = 0x70D0_5EED_0000_A11B;

/// The position frame a study samples from: `positions` starting points at
/// warmup depths `spacing, 2·spacing, …, positions·spacing` transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SamplingFrame {
    /// Number of sampling positions (the population size `N`).
    pub positions: u64,
    /// Warmup transactions between consecutive positions.
    pub spacing: u64,
}

impl SamplingFrame {
    /// A frame of `positions` starting points spaced `spacing` transactions.
    pub fn new(positions: u64, spacing: u64) -> Self {
        SamplingFrame { positions, spacing }
    }

    /// Warmup depth (cumulative transactions) of position `p`.
    pub fn warmup_of(&self, position: u64) -> u64 {
        (position + 1) * self.spacing
    }

    /// Total warmup span of the frame (depth of the deepest position).
    pub fn span(&self) -> u64 {
        self.positions * self.spacing
    }
}

/// A sampling experiment on one machine configuration: the frame, the
/// per-position measurement plan, and the executor that runs it.
///
/// Sits alongside [`TimeSampleStudy`](crate::timesample::TimeSampleStudy):
/// where a §5.2 sweep measures *every* starting point, a `SamplingStudy`
/// lets an estimator choose which positions to pay for. Construction
/// attaches an in-memory [`CheckpointStore`] if the executor has none, so
/// repeated estimates memoize warmed states across trials.
pub struct SamplingStudy<W, F> {
    executor: Executor,
    config: MachineConfig,
    make_workload: F,
    frame: SamplingFrame,
    measure_plan: RunPlan,
    proxy_plan: RunPlan,
    _workload: PhantomData<fn() -> W>,
}

impl<W, F> fmt::Debug for SamplingStudy<W, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SamplingStudy")
            .field("frame", &self.frame)
            .field("measure_plan", &self.measure_plan)
            .field("proxy_plan", &self.proxy_plan)
            .finish_non_exhaustive()
    }
}

impl<W, F> SamplingStudy<W, F>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W,
{
    /// Builds a study over `frame` on `config`, measuring each sampled
    /// position with `plan.runs` perturbed runs of `plan.transactions`
    /// transactions forked from the position's warmed snapshot.
    ///
    /// `plan.warmup_transactions` is ignored — warmup is the frame's job.
    /// The ranked-set proxy defaults to a single run of
    /// `max(1, plan.transactions / 8)` transactions; tune it with
    /// [`SamplingStudy::with_proxy_transactions`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for an empty frame, zero
    /// spacing, or a degenerate plan.
    pub fn new(
        executor: &Executor,
        config: MachineConfig,
        make_workload: F,
        frame: SamplingFrame,
        plan: &RunPlan,
    ) -> Result<Self> {
        if frame.positions < 2 {
            return Err(CoreError::InvalidExperiment {
                what: "a sampling frame needs at least two positions".into(),
            });
        }
        if frame.spacing == 0 {
            return Err(CoreError::InvalidExperiment {
                what: "a sampling frame needs positive spacing".into(),
            });
        }
        if plan.runs == 0 || plan.transactions == 0 {
            return Err(CoreError::InvalidExperiment {
                what: "a sampling plan needs runs >= 1 and transactions >= 1".into(),
            });
        }
        let executor = if executor.checkpoint_store().is_some() {
            executor.clone()
        } else {
            executor
                .clone()
                .with_checkpoint_store(Arc::new(CheckpointStore::new()))
        };
        let measure_plan = RunPlan::new(plan.transactions)
            .with_runs(plan.runs)
            .with_base_seed(plan.base_seed);
        let proxy_plan = RunPlan::new((plan.transactions / 8).max(1))
            .with_runs(1)
            .with_base_seed(plan.base_seed ^ PROXY_SEED_SALT);
        Ok(SamplingStudy {
            executor,
            config,
            make_workload,
            frame,
            measure_plan,
            proxy_plan,
            _workload: PhantomData,
        })
    }

    /// Sets the ranked-set proxy probe length (transactions of its single
    /// run). Shorter probes make ranking cheaper and noisier.
    #[must_use]
    pub fn with_proxy_transactions(mut self, transactions: u64) -> Self {
        self.proxy_plan.transactions = transactions.max(1);
        self
    }

    /// The study's position frame.
    pub fn frame(&self) -> SamplingFrame {
        self.frame
    }

    /// A fresh oracle over this study. Each oracle starts its warmup
    /// accounting from scratch, so one oracle's total cost is what the
    /// estimate would have cost standalone — even when the shared store
    /// makes repeated trials nearly free in wall-clock terms.
    pub fn oracle(&self) -> StudyOracle<'_, W, F> {
        StudyOracle {
            study: self,
            warmed: BTreeMap::new(),
            violations: 0,
        }
    }

    /// Runs `method` once with design seed `seed` and returns its report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for an infeasible design
    /// and propagates simulator/statistics errors.
    pub fn estimate(&self, method: Method, seed: u64) -> Result<SampleReport> {
        let mut oracle = self.oracle();
        let population = self.frame.positions;
        let (estimate, converged, rounds) = match method {
            Method::Position { samples, strata } => {
                let design = PositionDesign {
                    population,
                    samples,
                    strata,
                    seed,
                    level: 0.95,
                };
                (
                    position_sample(&design, &mut oracle).map_err(lift)?,
                    None,
                    None,
                )
            }
            Method::RankedSet { set_size, cycles } => {
                let design = RankedSetDesign {
                    population,
                    set_size,
                    cycles,
                    seed,
                    level: 0.95,
                };
                (
                    ranked_set_sample(&design, &mut oracle).map_err(lift)?,
                    None,
                    None,
                )
            }
            Method::Live {
                target_half_width,
                max_samples,
            } => {
                let design = LiveDesign {
                    population,
                    initial: 4.min(max_samples).max(2),
                    batch: 2,
                    target_half_width,
                    max_samples,
                    seed,
                    level: 0.95,
                };
                let out = live_sample(&design, &mut oracle).map_err(lift)?;
                (out.estimate, Some(out.converged), Some(out.rounds))
            }
        };
        Ok(SampleReport {
            method,
            estimate,
            converged,
            rounds,
            violations: oracle.violations,
        })
    }

    /// Full-run ground truth: a census of the frame (every position
    /// measured, in depth order so warmup chains), returning per-position
    /// values, their mean, and the total simulated-cycle cost — the
    /// denominator of every estimator's cost ratio.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn ground_truth(&self) -> Result<GroundTruth> {
        let mut oracle = self.oracle();
        let mut values = Vec::with_capacity(self.frame.positions as usize);
        let mut simulated = 0.0;
        for p in 0..self.frame.positions {
            let m = oracle.measure(p)?;
            values.push(m.value);
            simulated += m.cost;
        }
        Ok(GroundTruth {
            values,
            simulated,
            violations: oracle.violations,
        })
    }
}

/// A [`PositionOracle`] over a [`SamplingStudy`]: position `p` warms to
/// depth `(p+1)·spacing` (chaining from the deepest prefix this oracle has
/// already warmed, with the store memoizing across oracles), forks the
/// plan's perturbed runs from the snapshot, and reports their mean
/// cycles-per-transaction.
///
/// The cost of a measurement is `newly-warmed cycles + measured run
/// cycles`: warmup is charged incrementally against this oracle's own
/// deepest prefix, so an estimator's total cost equals what it would have
/// simulated running alone with a fresh store — cache hits from *other*
/// oracles (e.g. an earlier ground-truth census) don't deflate it.
pub struct StudyOracle<'a, W, F> {
    study: &'a SamplingStudy<W, F>,
    /// Warmup depth → (cycle count at that depth, snapshot).
    warmed: BTreeMap<u64, (u64, Arc<Checkpoint>)>,
    violations: u64,
}

impl<W, F> fmt::Debug for StudyOracle<'_, W, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StudyOracle")
            .field("warmed_depths", &self.warmed.len())
            .field("violations", &self.violations)
            .finish_non_exhaustive()
    }
}

impl<W, F> StudyOracle<'_, W, F>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W,
{
    /// Invariant violations observed across every run this oracle has
    /// launched (zero unless the executor monitors invariants).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    fn eval(&mut self, position: u64, plan: &RunPlan) -> Result<Measurement> {
        let s = self.study;
        if position >= s.frame.positions {
            return Err(CoreError::InvalidExperiment {
                what: format!(
                    "position {position} outside the {}-position frame",
                    s.frame.positions
                ),
            });
        }
        let warmup = s.frame.warmup_of(position);
        let snap = {
            let from = self
                .warmed
                .range(..=warmup)
                .next_back()
                .map(|(w, (_, ck))| (*w, ck.as_ref()));
            s.executor.warm_checkpoint(
                &s.config,
                &s.make_workload,
                s.measure_plan.base_seed,
                warmup,
                from,
            )?
        };
        let space =
            s.executor
                .run_space_from_snapshot::<W>(&snap, s.config.perturbation_max_ns, plan)?;
        self.violations += space.total_violations();
        let results = space.results();
        let warm_end = results[0].start_cycle;
        let charged_warmup = match self.warmed.range(..=warmup).next_back() {
            Some((&w, _)) if w == warmup => 0,
            Some((_, &(cycle, _))) => warm_end.saturating_sub(cycle),
            None => warm_end,
        };
        self.warmed
            .entry(warmup)
            .or_insert_with(|| (warm_end, Arc::clone(&snap)));
        let measured: u64 = results.iter().map(|r| r.elapsed()).sum();
        let value = results
            .iter()
            .map(|r| r.cycles_per_transaction())
            .sum::<f64>()
            / results.len() as f64;
        Ok(Measurement::new(value, (charged_warmup + measured) as f64))
    }
}

impl<W, F> PositionOracle for StudyOracle<'_, W, F>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W,
{
    type Error = CoreError;

    fn measure(&mut self, position: u64) -> std::result::Result<Measurement, CoreError> {
        let plan = self.study.measure_plan;
        self.eval(position, &plan)
    }

    fn proxy(&mut self, position: u64) -> std::result::Result<Measurement, CoreError> {
        let plan = self.study.proxy_plan;
        self.eval(position, &plan)
    }
}

fn lift(e: SamplingError<CoreError>) -> CoreError {
    match e {
        SamplingError::Design { what } => CoreError::InvalidExperiment { what },
        SamplingError::Stats(s) => CoreError::Stats(s),
        SamplingError::Oracle(c) => c,
        _ => CoreError::InvalidExperiment {
            what: "sampling estimator failed".into(),
        },
    }
}

/// An estimator selection with its knobs — the unit [`evaluate`] scores.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Method {
    /// Simple-random (`strata == 1`) or stratified position sampling.
    Position {
        /// Positions measured.
        samples: usize,
        /// Contiguous equal-width strata (`1` = SRS).
        strata: usize,
    },
    /// Ranked-set sampling: `set_size · cycles` measurements guided by
    /// `set_size² · cycles` cheap proxy probes.
    RankedSet {
        /// Candidates ranked per set (and measurements per cycle).
        set_size: usize,
        /// Full rank rotations.
        cycles: usize,
    },
    /// Live sampling: extend measurement until the CI half-width is within
    /// `target_half_width · |mean|` or `max_samples` is hit.
    Live {
        /// Relative CI half-width target (e.g. `0.02` for ±2%).
        target_half_width: f64,
        /// Hard ceiling on measurements.
        max_samples: usize,
    },
}

impl Method {
    /// Short stable name for tables and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Position { strata: 1, .. } => "srs",
            Method::Position { .. } => "stratified",
            Method::RankedSet { .. } => "ranked-set",
            Method::Live { .. } => "live",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One estimator invocation: the estimate plus run-level context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleReport {
    /// The method that produced the estimate.
    pub method: Method,
    /// Point estimate, CI, and simulated-cycle cost.
    pub estimate: Estimate,
    /// Live sampling only: whether the precision target was met.
    pub converged: Option<bool>,
    /// Live sampling only: extension rounds taken.
    pub rounds: Option<usize>,
    /// Invariant violations observed across the estimate's runs.
    pub violations: u64,
}

/// Full-run ground truth for one study: the census of every frame position.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    values: Vec<f64>,
    simulated: f64,
    violations: u64,
}

impl GroundTruth {
    /// The population mean — what every estimator is trying to hit.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Per-position mean cycles-per-transaction, in frame order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total simulated cycles of the census (warmup + every measurement).
    pub fn simulated_cycles(&self) -> f64 {
        self.simulated
    }

    /// Invariant violations observed during the census.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

/// How one [`Method`] scored across the evaluation's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodScore {
    /// The method scored.
    pub method: Method,
    /// Trials run (per configuration side).
    pub trials: usize,
    /// Percentage of trial CIs (both sides pooled) containing their side's
    /// ground-truth mean. Nominal is the design level (95%).
    pub coverage_percent: f64,
    /// Wrong-conclusion ratio of trial point-estimate pairs versus the
    /// *true* direction: the probability that comparing one base-side
    /// estimate against one alternative-side estimate ranks the
    /// configurations the wrong way round.
    pub wcr_percent: f64,
    /// Mean absolute point-estimate error, percent of the true mean
    /// (pooled over both sides).
    pub mean_abs_error_percent: f64,
    /// Mean simulated-cycle cost, percent of the full-run census cost
    /// (pooled over both sides).
    pub mean_cost_percent: f64,
    /// Base-side trial point estimates, in trial order.
    pub points_base: Vec<f64>,
    /// Alternative-side trial point estimates, in trial order.
    pub points_alt: Vec<f64>,
}

/// The output of [`evaluate`]: ground truths plus one score per method.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Census of the base configuration's frame.
    pub truth_base: GroundTruth,
    /// Census of the alternative configuration's frame.
    pub truth_alt: GroundTruth,
    /// Scores, in the order the methods were given.
    pub scores: Vec<MethodScore>,
}

impl Evaluation {
    /// Renders the accuracy-vs-cost comparison as a [`Table`].
    pub fn table(&self) -> Table {
        let mut t = Table::new("Sampling estimators vs full-run ground truth");
        t.set_headers(vec![
            "Estimator",
            "Trials",
            "CI coverage (%)",
            "WCR vs truth (%)",
            "|error| (%)",
            "Cost (% of full run)",
        ]);
        for s in &self.scores {
            t.add_row(vec![
                s.method.name().to_owned(),
                s.trials.to_string(),
                format!("{:.1}", s.coverage_percent),
                format!("{:.1}", s.wcr_percent),
                format!("{:.2}", s.mean_abs_error_percent),
                format!("{:.1}", s.mean_cost_percent),
            ]);
        }
        t
    }
}

/// Derives decorrelated per-trial design seeds (splitmix-style).
fn trial_seed(base: u64, trial: usize) -> u64 {
    let mut z = base ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scores `methods` on a comparison experiment: `base` versus `alt` are two
/// studies of the *same frame shape* on different machine configurations
/// (the §4.1 setting — e.g. two L2 associativities). For each method and
/// each of `trials` design seeds, both sides are estimated; the scores
/// aggregate CI coverage against each side's census mean, the
/// wrong-conclusion ratio of cross-side point-estimate pairs versus the
/// true direction, absolute error, and cost.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `trials == 0`, `methods` is
/// empty, or the two ground truths tie exactly (no true direction exists);
/// propagates simulator and statistics errors.
pub fn evaluate<W, F>(
    base: &SamplingStudy<W, F>,
    alt: &SamplingStudy<W, F>,
    methods: &[Method],
    trials: usize,
    seed: u64,
) -> Result<Evaluation>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W,
{
    if trials == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "evaluation needs at least one trial".into(),
        });
    }
    if methods.is_empty() {
        return Err(CoreError::InvalidExperiment {
            what: "evaluation needs at least one method".into(),
        });
    }
    let truth_base = base.ground_truth()?;
    let truth_alt = alt.ground_truth()?;
    let (tb, ta) = (truth_base.mean(), truth_alt.mean());
    if tb == ta {
        return Err(CoreError::InvalidExperiment {
            what: "ground truths tie exactly; no true direction to score WCR against".into(),
        });
    }
    let truth_superior = if tb < ta {
        Superior::First
    } else {
        Superior::Second
    };

    let mut scores = Vec::with_capacity(methods.len());
    for &method in methods {
        let mut points_base = Vec::with_capacity(trials);
        let mut points_alt = Vec::with_capacity(trials);
        let mut covered = 0usize;
        let mut abs_err = 0.0;
        let mut cost = 0.0;
        for t in 0..trials {
            let s = trial_seed(seed, t);
            let rb = base.estimate(method, s)?;
            let ra = alt.estimate(method, s ^ 0x05EE_DA17)?;
            covered += usize::from(rb.estimate.ci().contains(tb))
                + usize::from(ra.estimate.ci().contains(ta));
            abs_err += (rb.estimate.point() - tb).abs() / tb.abs()
                + (ra.estimate.point() - ta).abs() / ta.abs();
            cost += rb.estimate.cost().simulated / truth_base.simulated_cycles()
                + ra.estimate.cost().simulated / truth_alt.simulated_cycles();
            points_base.push(rb.estimate.point());
            points_alt.push(ra.estimate.point());
        }
        let wcr_percent = match wrong_conclusion_ratio(&points_base, &points_alt) {
            Ok(w) => {
                if w.superior == truth_superior {
                    w.wcr_percent
                } else {
                    100.0 - w.wcr_percent
                }
            }
            // Trial means tied exactly: the estimator gives no direction at
            // all, which is a coin flip against the truth.
            Err(CoreError::InvalidExperiment { .. }) => 50.0,
            Err(e) => return Err(e),
        };
        scores.push(MethodScore {
            method,
            trials,
            coverage_percent: 100.0 * covered as f64 / (2 * trials) as f64,
            wcr_percent,
            mean_abs_error_percent: 100.0 * abs_err / (2 * trials) as f64,
            mean_cost_percent: 100.0 * cost / (2 * trials) as f64,
            points_base,
            points_alt,
        });
    }
    Ok(Evaluation {
        truth_base,
        truth_alt,
        scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::workload::SharingWorkload;

    fn small_study(dram_ns: u64) -> SamplingStudy<SharingWorkload, impl Fn() -> SharingWorkload> {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_dram_latency_ns(dram_ns)
            .with_perturbation(4, 0);
        SamplingStudy::new(
            &Executor::sequential(),
            cfg,
            || SharingWorkload::new(4, 3, 30, 2048, 8),
            SamplingFrame::new(6, 5),
            &RunPlan::new(10).with_runs(2),
        )
        .unwrap()
    }

    #[test]
    fn frame_geometry() {
        let f = SamplingFrame::new(10, 25);
        assert_eq!(f.warmup_of(0), 25);
        assert_eq!(f.warmup_of(9), 250);
        assert_eq!(f.span(), 250);
    }

    #[test]
    fn oracle_measures_deterministically_and_charges_warmup_once() {
        let study = small_study(80);
        let mut oracle = study.oracle();
        let a = oracle.measure(3).unwrap();
        let b = oracle.measure(3).unwrap();
        assert_eq!(a.value, b.value, "same position, same value");
        assert!(
            b.cost < a.cost,
            "second visit must not re-pay warmup: {} vs {}",
            b.cost,
            a.cost
        );
        // A shallower position after a deeper one re-pays its own warmup
        // (standalone accounting), but the value is position-intrinsic.
        let mut fresh = study.oracle();
        let c = fresh.measure(3).unwrap();
        assert_eq!(a, c, "fresh oracle reproduces measurement and cost");
    }

    #[test]
    fn warmup_charging_is_incremental_in_depth_order() {
        let study = small_study(80);
        let mut oracle = study.oracle();
        let shallow = oracle.measure(0).unwrap();
        let deep = oracle.measure(5).unwrap();
        let mut alone = study.oracle();
        let deep_alone = alone.measure(5).unwrap();
        assert_eq!(deep.value, deep_alone.value);
        assert!(
            deep.cost < deep_alone.cost,
            "chained deep warmup must charge only the extension"
        );
        assert!(shallow.cost > 0.0);
    }

    #[test]
    fn out_of_frame_position_is_rejected() {
        let study = small_study(80);
        let mut oracle = study.oracle();
        assert!(matches!(
            oracle.measure(6),
            Err(CoreError::InvalidExperiment { .. })
        ));
    }

    #[test]
    fn all_methods_estimate_within_frame() {
        let study = small_study(80);
        for method in [
            Method::Position {
                samples: 4,
                strata: 1,
            },
            Method::Position {
                samples: 4,
                strata: 2,
            },
            Method::RankedSet {
                set_size: 2,
                cycles: 2,
            },
            Method::Live {
                target_half_width: 0.5,
                max_samples: 6,
            },
        ] {
            let r = study.estimate(method, 11).unwrap();
            assert!(r.estimate.point().is_finite(), "{method}");
            assert!(r.estimate.cost().simulated > 0.0, "{method}");
            assert!(
                r.estimate.ci().lower() <= r.estimate.ci().upper(),
                "{method}"
            );
            let again = study.estimate(method, 11).unwrap();
            assert_eq!(r, again, "{method} must be reproducible per seed");
        }
    }

    #[test]
    fn ground_truth_census_covers_frame_and_costs_more_than_samples() {
        let study = small_study(80);
        let truth = study.ground_truth().unwrap();
        assert_eq!(truth.values().len(), 6);
        assert!(truth.mean().is_finite());
        let est = study
            .estimate(
                Method::Position {
                    samples: 2,
                    strata: 1,
                },
                3,
            )
            .unwrap();
        assert!(est.estimate.cost().simulated < truth.simulated_cycles());
    }

    #[test]
    fn study_validation() {
        let cfg = MachineConfig::hpca2003().with_cpus(2);
        let wl = || SharingWorkload::new(4, 3, 30, 2048, 8);
        let ex = Executor::sequential();
        let plan = RunPlan::new(10).with_runs(2);
        assert!(SamplingStudy::new(&ex, cfg.clone(), wl, SamplingFrame::new(1, 5), &plan).is_err());
        assert!(SamplingStudy::new(&ex, cfg.clone(), wl, SamplingFrame::new(4, 0), &plan).is_err());
        assert!(SamplingStudy::new(
            &ex,
            cfg,
            wl,
            SamplingFrame::new(4, 5),
            &RunPlan::new(10).with_runs(0)
        )
        .is_err());
    }

    #[test]
    fn evaluation_scores_methods_and_renders_table() {
        let base = small_study(60);
        let alt = small_study(200); // slower memory: clear true direction
        let methods = [
            Method::Position {
                samples: 4,
                strata: 1,
            },
            Method::Live {
                target_half_width: 0.5,
                max_samples: 6,
            },
        ];
        let eval = evaluate(&base, &alt, &methods, 2, 42).unwrap();
        assert_eq!(eval.scores.len(), 2);
        for s in &eval.scores {
            assert_eq!(s.trials, 2);
            assert!((0.0..=100.0).contains(&s.coverage_percent));
            assert!((0.0..=100.0).contains(&s.wcr_percent));
            assert!(s.mean_cost_percent > 0.0);
            assert_eq!(s.points_base.len(), 2);
        }
        let table = eval.table();
        assert_eq!(table.row_count(), 2);
        assert!(table.to_string().contains("srs"));

        assert!(evaluate(&base, &alt, &methods, 0, 1).is_err());
        assert!(evaluate(&base, &alt, &[], 1, 1).is_err());
    }
}
