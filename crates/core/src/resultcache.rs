//! Disk spill for the executor's run-result cache.
//!
//! The in-memory result cache (inside [`Executor`]) memoizes completed runs
//! under `(config, workload, seed, warmup, transactions)` so overlapping
//! sweeps never re-simulate a run — but it dies with the process. A
//! long-running service wants the opposite: restart the daemon and keep the
//! warm results. The [`ResultStore`] is that persistence layer, built on the
//! same crash-safety machinery as the checkpoint store
//! ([`crate::checkpoint::CheckpointStore`]):
//!
//! * **Crash-safe writes.** Every insert goes to a temporary file, `fsync`,
//!   then an atomic rename — an interrupted write can never leave a
//!   truncated record under the final name.
//! * **Validated reads, corrupt-file fallback.** Records are framed with
//!   magic, version, length and a content fingerprint, all checked on load.
//!   A corrupt or truncated file is deleted and reported as a miss, and the
//!   executor falls back to re-simulation — always correct, never poisoned.
//! * **Violations persist.** A spilled record carries the run's invariant
//!   findings alongside its measurement, so a restarted service replays
//!   violation summaries exactly like an in-memory cache hit would.
//!
//! [`Executor`]: crate::runspace::Executor

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use mtvar_sim::checkpoint::{CheckpointError, Decoder, Encoder, Snap};
use mtvar_sim::stats::RunResult;

use crate::checkpoint::write_atomically;
use crate::runspace::Violation;

/// Magic bytes opening a framed run-result record.
pub const RESULT_MAGIC: [u8; 8] = *b"MTVARRES";

/// Current record encoding version. Bump when [`RunRecord`]'s wire format
/// changes; old spill files are then rejected (and deleted) instead of
/// misread.
pub const RESULT_VERSION: u32 = 1;

/// Cap on buffered warnings, mirroring the checkpoint store's bound.
const MAX_WARNINGS: usize = 64;

/// Cache key: the complete identity of one simulated run. Two sweeps that
/// agree on all five fields may share a result; any disagreement keys them
/// apart. The fields are the fingerprints the executor already derives —
/// `source` is a config fingerprint (XORed with the shared-warmup domain
/// separator for forked sweeps) or a snapshot fingerprint, and `seed` is the
/// run's derived perturbation seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Source fingerprint (configuration or snapshot identity).
    pub source: u64,
    /// Workload-factory fingerprint.
    pub workload: u64,
    /// Derived per-run perturbation seed.
    pub seed: u64,
    /// Warmup transactions of the plan.
    pub warmup: u64,
    /// Measured transactions of the plan.
    pub transactions: u64,
}

impl RunKey {
    fn file_name(&self) -> String {
        format!(
            "rr-{:016x}-{:016x}-{:016x}-w{}-t{}.run",
            self.source, self.workload, self.seed, self.warmup, self.transactions
        )
    }
}

/// What the executor remembers about one completed run: the measurement plus
/// the invariant findings made while producing it. Caching the findings is
/// what lets cache hits *replay* violations instead of silently dropping
/// them — on disk exactly as in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The run's complete measurement.
    pub result: RunResult,
    /// Whether an invariant monitor observed the run at all. Strict
    /// executors refuse to trust unmonitored entries and re-simulate.
    pub monitored: bool,
    /// Uncapped violation count from the run's monitor.
    pub total_violations: u64,
    /// Stored violation reports (capped by the monitor).
    pub violations: Vec<Violation>,
}

mtvar_sim::impl_snap!(RunRecord {
    result,
    monitored,
    total_violations,
    violations,
});

/// Encodes one record into its framed byte form: `magic | version |
/// payload_len | fingerprint | payload`.
pub fn encode_record(record: &RunRecord) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(28 + record.snap_size_hint());
    record.encode_snap(&mut enc);
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&RESULT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fingerprint_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a framed record, validating magic, version, length, fingerprint
/// and structure. Every malformed input — truncation, bit flip, splice,
/// hostile length — is an error, never a panic, and lengths are checked
/// against the actual byte count before anything is sized from them.
///
/// # Errors
///
/// Returns the [`CheckpointError`] naming the first validation failure.
pub fn decode_record(bytes: &[u8]) -> Result<RunRecord, CheckpointError> {
    let mut dec = Decoder::new(bytes);
    if dec.get_bytes(8)? != RESULT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = dec.get_u32()?;
    if version != RESULT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let payload_len = dec.get_u64()?;
    let stored = dec.get_u64()?;
    // Hostile-length rejection: the claimed length must match what is
    // actually present, and is never used to size an allocation.
    if payload_len != dec.remaining() as u64 {
        return Err(CheckpointError::Truncated);
    }
    let payload = dec.get_bytes(payload_len as usize)?;
    let actual = fingerprint_bytes(payload);
    if stored != actual {
        return Err(CheckpointError::FingerprintMismatch { stored, actual });
    }
    let mut body = Decoder::new(payload);
    let record = RunRecord::decode_snap(&mut body)?;
    body.finish()?;
    Ok(record)
}

/// FNV-1a over bytes with a SplitMix64 finalizer — the workspace's standard
/// content fingerprint construction.
fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// On-disk run-result store: one validated frame per completed run, written
/// crash-safely. Attached to an executor via
/// [`Executor::with_result_spill`]; the in-memory cache consults it on a
/// miss and writes through on insert.
///
/// [`Executor::with_result_spill`]: crate::runspace::Executor::with_result_spill
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    warnings: Mutex<Vec<String>>,
}

impl ResultStore {
    /// The conventional spill directory, `target/mtvar-results/`.
    pub fn default_spill_dir() -> PathBuf {
        PathBuf::from("target").join("mtvar-results")
    }

    /// A store spilling under `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultStore {
            dir: dir.into(),
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// The spill directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Drains and returns the warnings accumulated from degraded disk
    /// operations (unreadable or corrupt spill files, failed writes). Every
    /// warning was also written to stderr when it occurred.
    pub fn take_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.warnings.lock().expect("store poisoned"))
    }

    fn warn(&self, message: String) {
        eprintln!("mtvar result store: {message}");
        let mut warnings = self.warnings.lock().expect("store poisoned");
        if warnings.len() < MAX_WARNINGS {
            warnings.push(message);
        }
    }

    /// Loads the record for `key` from disk. A file that fails frame
    /// validation (truncated, corrupt, wrong version) is deleted and
    /// reported as a miss — the caller re-simulates and the next insert
    /// rewrites it whole.
    pub fn get(&self, key: &RunKey) -> Option<RunRecord> {
        let path = self.dir.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.warn(format!("spill entry {} is unreadable: {e}", path.display()));
                return None;
            }
        };
        match decode_record(&bytes) {
            Ok(record) => Some(record),
            Err(e) => {
                match fs::remove_file(&path) {
                    Ok(()) => self.warn(format!(
                        "deleted corrupt spill entry {} ({e})",
                        path.display()
                    )),
                    Err(rm) => self.warn(format!(
                        "corrupt spill entry {} ({e}) could not be deleted: {rm}",
                        path.display()
                    )),
                }
                None
            }
        }
    }

    /// Writes `record` under `key` via temp-file + `fsync` + atomic rename.
    /// Best-effort: an I/O failure degrades to memory-only caching (with a
    /// warning) rather than failing the sweep.
    pub fn insert(&self, key: &RunKey, record: &RunRecord) {
        let bytes = encode_record(record);
        if let Err(e) = write_atomically(&self.dir, &key.file_name(), &bytes) {
            self.warn(format!(
                "failed to spill run result {}: {e}",
                key.file_name()
            ));
        }
    }

    /// Number of `.run` records currently on disk (a directory scan; used by
    /// stats reporting, not hot paths).
    pub fn len_on_disk(&self) -> usize {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".run"))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::stats::RunResult;

    fn key(seed: u64) -> RunKey {
        RunKey {
            source: 0xAB,
            workload: 0xCD,
            seed,
            warmup: 10,
            transactions: 25,
        }
    }

    fn record(tag: u64) -> RunRecord {
        let mut result = RunResult {
            start_cycle: 100 + tag,
            end_cycle: 900 + tag,
            transactions: 4,
            commit_cycles: vec![200, 400, 600, 900 + tag],
            mem: Default::default(),
            proc: Default::default(),
            locks: Default::default(),
            sched: Default::default(),
            sched_events: Vec::new(),
            cpu_busy_ns: 640,
            cpus: 4,
        };
        result.mem.l1d_hits = 7 * tag;
        RunRecord {
            result,
            monitored: true,
            total_violations: 0,
            violations: Vec::new(),
        }
    }

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtvar-result-test-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips() {
        let r = record(3);
        let bytes = encode_record(&r);
        assert_eq!(decode_record(&bytes).unwrap(), r);
    }

    #[test]
    fn every_frame_mutation_is_rejected() {
        let bytes = encode_record(&record(5));
        // Every byte position, one flipped bit.
        for i in 0..bytes.len() {
            let mut buf = bytes.clone();
            buf[i] ^= 1 << (i % 8);
            assert!(decode_record(&buf).is_err(), "flip at byte {i} decoded Ok");
        }
        // Every truncation.
        for len in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded Ok"
            );
        }
        // Hostile payload length: claims u64::MAX but must be rejected by
        // comparison against the real byte count, never allocated.
        let mut buf = bytes.clone();
        buf[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn disk_round_trip_and_corrupt_fallback() {
        let dir = temp_dir("spill");
        let store = ResultStore::new(&dir);
        assert!(store.get(&key(1)).is_none());
        store.insert(&key(1), &record(1));
        assert_eq!(store.get(&key(1)).unwrap(), record(1));
        assert!(store.get(&key(2)).is_none(), "seed is part of the key");
        assert_eq!(store.len_on_disk(), 1);

        // Corrupt the file: the read must miss, delete, and warn.
        let path = dir.join(key(1).file_name());
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(&key(1)).is_none());
        assert!(!path.exists(), "corrupt file must be deleted");
        let warnings = store.take_warnings();
        assert!(
            warnings.iter().any(|w| w.contains("corrupt")),
            "corruption must be surfaced: {warnings:?}"
        );
        assert!(store.take_warnings().is_empty(), "warnings drain");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = temp_dir("atomic");
        let store = ResultStore::new(&dir);
        store.insert(&key(9), &record(9));
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn violations_persist_across_the_spill() {
        let dir = temp_dir("violations");
        let store = ResultStore::new(&dir);
        let mut r = record(2);
        r.monitored = true;
        r.total_violations = 3;
        let bytes = encode_record(&r);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back.total_violations, 3);
        store.insert(&key(2), &r);
        assert_eq!(store.get(&key(2)).unwrap().total_violations, 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
