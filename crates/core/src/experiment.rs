//! Declarative comparison experiments: the one-call form of the paper's
//! whole §5.1 workflow.
//!
//! An [`Experiment`] names a set of configurations, a workload factory and a
//! [`RunPlan`]; [`Experiment::run`] executes the perturbed run space for
//! every configuration and returns an [`ExperimentReport`] holding
//! per-configuration variability, all pairwise wrong-conclusion ratios and
//! methodology verdicts — everything the paper says to look at before
//! claiming one design beats another.

use mtvar_sim::checkpoint::Snap;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::workload::Workload;

use crate::compare::{Comparison, Verdict};
use crate::metrics::VariabilityReport;
use crate::report::Table;
use crate::runspace::{Executor, RunPlan};
use crate::wcr::{wrong_conclusion_ratio, Superior, Wcr};
use crate::{CoreError, Result};

/// A named configuration under test.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Arm {
    /// Display name ("2-way", "ROB-64", ...).
    pub name: String,
    /// The machine configuration.
    pub config: MachineConfig,
}

/// A declarative multi-configuration comparison experiment.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Experiment {
    name: String,
    arms: Vec<Arm>,
    plan: RunPlan,
    alpha: f64,
}

impl Experiment {
    /// Creates an experiment with the paper's default significance level
    /// (α = 0.05).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if fewer than two arms are
    /// supplied or arm names collide.
    pub fn new(name: &str, arms: Vec<Arm>, plan: RunPlan) -> Result<Self> {
        if arms.len() < 2 {
            return Err(CoreError::InvalidExperiment {
                what: "an experiment needs at least two configurations".into(),
            });
        }
        let mut names: Vec<&str> = arms.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != arms.len() {
            return Err(CoreError::InvalidExperiment {
                what: "configuration names must be unique".into(),
            });
        }
        Ok(Experiment {
            name: name.to_owned(),
            arms,
            plan,
            alpha: 0.05,
        })
    }

    /// Overrides the significance level used for verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] for `alpha` outside `(0, 1)`.
    pub fn with_alpha(mut self, alpha: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha <= 0.0 || alpha >= 1.0 {
            return Err(CoreError::InvalidExperiment {
                what: "alpha must lie in (0, 1)".into(),
            });
        }
        self.alpha = alpha;
        Ok(self)
    }

    /// The experiment's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs every arm's perturbed run space sequentially and assembles the
    /// report. Equivalent to [`Experiment::run_with`] on a single-threaded
    /// [`Executor`] — and bit-identical to any other thread count.
    ///
    /// `make_workload` is called once per run with the same semantics as
    /// [`crate::runspace::run_space`]; all arms share the same workload
    /// factory, so the comparison isolates the configuration difference.
    ///
    /// # Errors
    ///
    /// Propagates simulator and statistics errors.
    pub fn run<W, F>(&self, make_workload: F) -> Result<ExperimentReport>
    where
        W: Workload + Snap + Clone + Send + Sync,
        F: Fn() -> W + Sync,
    {
        self.run_with(&Executor::sequential(), make_workload)
    }

    /// Runs every arm's perturbed run space on `executor` and assembles the
    /// report.
    ///
    /// Each arm's runs fan out over the executor's thread pool; per-arm seed
    /// streams derive from each configuration's fingerprint, so the result is
    /// independent of thread count and of the order arms execute in. The
    /// executor's cache lets repeated or overlapping experiments re-use runs.
    ///
    /// # Errors
    ///
    /// Propagates simulator and statistics errors.
    pub fn run_with<W, F>(&self, executor: &Executor, make_workload: F) -> Result<ExperimentReport>
    where
        W: Workload + Snap + Clone + Send + Sync,
        F: Fn() -> W + Sync,
    {
        let mut arms = Vec::with_capacity(self.arms.len());
        for arm in &self.arms {
            let space = executor.run_space(&arm.config, &make_workload, &self.plan)?;
            let runtimes = space.runtimes();
            let variability = VariabilityReport::from_runtimes(&runtimes)?;
            arms.push(ArmResult {
                name: arm.name.clone(),
                runtimes,
                variability,
                violations: space.total_violations(),
            });
        }

        let mut pairs = Vec::new();
        for i in 0..arms.len() {
            for j in (i + 1)..arms.len() {
                // Exact ties (identical means, possible when a config knob
                // turns out not to matter) have no WCR direction; report
                // them as such instead of failing the experiment.
                let wcr = match wrong_conclusion_ratio(&arms[i].runtimes, &arms[j].runtimes) {
                    Ok(w) => Some(w),
                    Err(CoreError::InvalidExperiment { .. }) => None,
                    Err(e) => return Err(e),
                };
                let cmp = Comparison::from_runs(
                    &arms[i].name,
                    &arms[i].runtimes,
                    &arms[j].name,
                    &arms[j].runtimes,
                )?;
                let verdict = match cmp.verdict(self.alpha) {
                    Ok(v) => v,
                    // Degenerate (both samples constant): nothing separates.
                    Err(CoreError::Stats(_)) => Verdict::Inconclusive { p_value: 1.0 },
                    Err(e) => return Err(e),
                };
                pairs.push(PairResult {
                    first: arms[i].name.clone(),
                    second: arms[j].name.clone(),
                    wcr,
                    verdict,
                });
            }
        }
        Ok(ExperimentReport {
            name: self.name.clone(),
            alpha: self.alpha,
            arms,
            pairs,
        })
    }
}

/// Per-configuration outcome.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArmResult {
    /// Configuration name.
    pub name: String,
    /// Cycles-per-transaction of every run.
    pub runtimes: Vec<f64>,
    /// The paper's variability metrics.
    pub variability: VariabilityReport,
    /// Total invariant violations across this arm's sweep (0 when the runs
    /// were unmonitored — run on a strict executor, or with a monitored
    /// configuration, for the count to be meaningful).
    pub violations: u64,
}

/// Pairwise comparison outcome.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PairResult {
    /// First configuration name.
    pub first: String,
    /// Second configuration name.
    pub second: String,
    /// Wrong-conclusion ratio between the two run sets; `None` when the
    /// sample means are exactly equal (no conclusion to contradict).
    pub wcr: Option<Wcr>,
    /// Methodology verdict at the experiment's α.
    pub verdict: Verdict,
}

/// The assembled result of an [`Experiment`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentReport {
    name: String,
    alpha: f64,
    arms: Vec<ArmResult>,
    pairs: Vec<PairResult>,
}

impl ExperimentReport {
    /// Per-configuration results, in arm order.
    pub fn arms(&self) -> &[ArmResult] {
        &self.arms
    }

    /// All pairwise comparisons.
    pub fn pairs(&self) -> &[PairResult] {
        &self.pairs
    }

    /// The best (lowest-mean) configuration.
    pub fn best_arm(&self) -> &ArmResult {
        self.arms
            .iter()
            .min_by(|a, b| {
                a.variability
                    .mean
                    .partial_cmp(&b.variability.mean)
                    .expect("finite means")
            })
            .expect("experiments have >= 2 arms")
    }

    /// Whether *every* pairwise comparison is conclusive at the experiment's
    /// α — the condition under which the full ranking can be reported.
    pub fn fully_conclusive(&self) -> bool {
        self.pairs.iter().all(|p| p.verdict.is_conclusive())
    }

    /// Whether no arm recorded an invariant violation — as strong as the
    /// monitoring behind the sweeps (see [`ArmResult::violations`]).
    pub fn is_clean(&self) -> bool {
        self.arms.iter().all(|a| a.violations == 0)
    }

    /// Renders the report as two text tables (per-arm and pairwise).
    pub fn to_table(&self) -> (Table, Table) {
        let mut arms = Table::new(&format!("{} — per-configuration results", self.name));
        arms.set_headers(vec![
            "configuration",
            "mean cyc/txn",
            "CoV",
            "range",
            "runs",
            "violations",
        ]);
        for a in &self.arms {
            arms.add_row(vec![
                a.name.clone(),
                format!("{:.1}", a.variability.mean),
                format!("{:.2}%", a.variability.cov_percent),
                format!("{:.2}%", a.variability.range_percent),
                a.variability.runs.to_string(),
                crate::report::count_or_clean(a.violations),
            ]);
        }
        let mut pairs = Table::new(&format!(
            "{} — pairwise comparisons (alpha = {})",
            self.name, self.alpha
        ));
        pairs.set_headers(vec!["pair", "superior", "WCR", "verdict"]);
        for p in &self.pairs {
            let superior = match p.wcr.map(|w| w.superior) {
                Some(Superior::First) => p.first.as_str(),
                Some(Superior::Second) => p.second.as_str(),
                None => "(exact tie)",
            };
            let verdict = match p.verdict {
                Verdict::Superior {
                    wrong_conclusion_bound,
                    ..
                } => format!("conclusive (p <= {wrong_conclusion_bound:.3})"),
                Verdict::Inconclusive { p_value } => format!("inconclusive (p = {p_value:.3})"),
            };
            pairs.add_row(vec![
                format!("{} vs {}", p.first, p.second),
                superior.to_owned(),
                p.wcr
                    .map_or_else(|| "-".to_owned(), |w| format!("{:.1}%", w.wcr_percent)),
                verdict,
            ]);
        }
        (arms, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::workload::SharingWorkload;

    fn arms() -> Vec<Arm> {
        let base = MachineConfig::hpca2003()
            .with_cpus(4)
            .with_perturbation(4, 0);
        vec![
            Arm {
                name: "slow-dram".into(),
                config: base.clone().with_dram_latency_ns(200),
            },
            Arm {
                name: "fast-dram".into(),
                config: base,
            },
        ]
    }

    fn workload() -> SharingWorkload {
        SharingWorkload::new(8, 42, 40, 4096, 10)
    }

    #[test]
    fn experiment_end_to_end() {
        let plan = RunPlan::new(40).with_runs(4).with_warmup(40);
        let exp = Experiment::new("assoc", arms(), plan).unwrap();
        let report = exp.run(workload).unwrap();
        assert_eq!(report.arms().len(), 2);
        assert_eq!(report.pairs().len(), 1);
        assert!(report.arms()[0].variability.mean > 0.0);
        let (t1, t2) = report.to_table();
        assert_eq!(t1.row_count(), 2);
        assert_eq!(t2.row_count(), 1);
        // best_arm is one of the arms.
        let best = report.best_arm().name.clone();
        assert_eq!(best, "fast-dram", "80 ns DRAM must beat 200 ns");
        // fully_conclusive is a bool either way; just exercise it.
        let _ = report.fully_conclusive();
        // Clean sweeps report as such, all the way into the rendered table.
        assert!(report.is_clean());
        assert!(report.arms().iter().all(|a| a.violations == 0));
        assert!(t1.to_string().contains("violations"));
        assert!(t1.to_string().contains("clean"));
    }

    #[test]
    fn three_arms_give_three_pairs() {
        let mut a = arms();
        a.push(Arm {
            name: "slower-dram".into(),
            config: MachineConfig::hpca2003()
                .with_cpus(4)
                .with_dram_latency_ns(400),
        });
        let plan = RunPlan::new(30).with_runs(3);
        let exp = Experiment::new("assoc3", a, plan).unwrap();
        let report = exp.run(workload).unwrap();
        assert_eq!(report.pairs().len(), 3);
    }

    #[test]
    fn validation() {
        let plan = RunPlan::new(10);
        assert!(Experiment::new("x", vec![], plan).is_err());
        let one = vec![Arm {
            name: "a".into(),
            config: MachineConfig::hpca2003(),
        }];
        assert!(Experiment::new("x", one, plan).is_err());
        let dup = vec![
            Arm {
                name: "a".into(),
                config: MachineConfig::hpca2003(),
            },
            Arm {
                name: "a".into(),
                config: MachineConfig::hpca2003(),
            },
        ];
        assert!(Experiment::new("x", dup, plan).is_err());
        let ok = Experiment::new("x", arms(), plan).unwrap();
        assert!(ok.with_alpha(0.0).is_err());
    }
}
