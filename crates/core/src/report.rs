//! Plain-text rendering of experiment tables and series, used by the bench
//! harness and examples to print paper-style artifacts.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use mtvar_core::report::Table;
///
/// let mut t = Table::new("Table 1. Summary of Experiment 1");
/// t.set_headers(vec!["Configurations Compared", "WCR (%)"]);
/// t.add_row(vec!["DM vs 2-way".into(), "24.0".into()]);
/// let s = t.to_string();
/// assert!(s.contains("WCR"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: &str) -> Self {
        Table {
            title: title.to_owned(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn set_headers<S: Into<String>>(&mut self, headers: Vec<S>) -> &mut Self {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if headers are set and the row width differs.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        if !self.headers.is_empty() {
            assert_eq!(
                row.len(),
                self.headers.len(),
                "row width must match headers"
            );
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as RFC-4180-style CSV (headers first if set),
    /// quoting cells that contain commas, quotes or newlines — for feeding
    /// measured artifacts into plotting pipelines.
    ///
    /// # Example
    ///
    /// ```
    /// use mtvar_core::report::Table;
    ///
    /// let mut t = Table::new("demo");
    /// t.set_headers(vec!["a", "b"]);
    /// t.add_row(vec!["1".into(), "x,y".into()]);
    /// assert_eq!(t.to_csv(), "a,b\n1,\"x,y\"\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        if !self.headers.is_empty() {
            let line: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes [`Table::to_csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            writeln!(f, "  {}", rule.join("  "))?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.314` →
/// `"31.4%"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a cycles-per-transaction value in millions, e.g. `4_512_345.0` →
/// `"4.512"`.
pub fn mcycles(v: f64) -> String {
    format!("{:.3}", v / 1.0e6)
}

/// Renders a mean ± sd with min/max, the paper's error-bar figures in text
/// form.
pub fn mean_sd_min_max(mean: f64, sd: f64, min: f64, max: f64) -> String {
    format!("{mean:.1} ± {sd:.1} [{min:.1}, {max:.1}]")
}

/// Renders an invariant-violation count for report tables: `"clean"` for
/// zero, the count otherwise.
pub fn count_or_clean(n: u64) -> String {
    if n == 0 {
        "clean".to_owned()
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo");
        t.set_headers(vec!["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "22222".into()]);
        let s = t.to_string();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        // Alignment: all data lines have the same prefix width up to col 2.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x");
        t.set_headers(vec!["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(mcycles(4_512_000.0), "4.512");
        let s = mean_sd_min_max(10.0, 0.5, 9.0, 11.0);
        assert!(s.contains('±') && s.contains('['));
        assert_eq!(count_or_clean(0), "clean");
        assert_eq!(count_or_clean(7), "7");
    }

    #[test]
    fn headerless_table() {
        let mut t = Table::new("no headers");
        t.add_row(vec!["a".into(), "b".into()]);
        assert!(t.to_string().contains('a'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x");
        t.set_headers(vec!["plain", "tricky"]);
        t.add_row(vec!["v".into(), "a,b".into()]);
        t.add_row(vec!["q\"q".into(), "line\nbreak".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("plain,tricky\n"));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
        assert!(csv.contains("\"line\nbreak\""));
    }

    #[test]
    fn csv_headerless() {
        let mut t = Table::new("x");
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "1,2\n");
    }

    #[test]
    fn csv_writes_to_disk() {
        let mut t = Table::new("x");
        t.set_headers(vec!["a"]);
        t.add_row(vec!["1".into()]);
        let path = std::env::temp_dir().join("mtvar_report_test.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "a\n1\n");
        let _ = std::fs::remove_file(path);
    }
}
