//! The §5.1 comparison methodology: confidence intervals, hypothesis
//! testing, verdicts, and minimum-run estimation.

use mtvar_stats::describe::Summary;
use mtvar_stats::infer::{
    jarque_bera, mean_confidence_interval, two_sample_t_test, ConfidenceInterval, JarqueBera,
    TTest, TTestKind,
};

use crate::runspace::RunSpace;
use crate::wcr::Superior;
use crate::{CoreError, Result};

/// A two-configuration comparison over multi-run samples of a runtime-like
/// metric (lower is better).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Comparison {
    name_a: String,
    name_b: String,
    a: Summary,
    b: Summary,
    runs_a: Vec<f64>,
    runs_b: Vec<f64>,
}

/// Outcome of a variability-aware comparison at a given significance level.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// One configuration is statistically better; the wrong-conclusion
    /// probability is bounded by `wrong_conclusion_bound`.
    Superior {
        /// Which configuration won.
        which: Superior,
        /// Upper bound on the probability this conclusion is wrong
        /// (the one-sided t-test p-value).
        wrong_conclusion_bound: f64,
    },
    /// The data cannot separate the configurations at the requested level —
    /// the paper's "it may not be possible to conclude that one outperforms
    /// the other" case (§4.1.3).
    Inconclusive {
        /// The p-value that failed the significance threshold.
        p_value: f64,
    },
}

impl Verdict {
    /// Whether the comparison reached a conclusion.
    pub fn is_conclusive(&self) -> bool {
        matches!(self, Verdict::Superior { .. })
    }
}

impl Comparison {
    /// Builds a comparison from per-run runtime samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if either sample has fewer than two runs
    /// or contains non-finite values.
    pub fn from_runs(name_a: &str, runs_a: &[f64], name_b: &str, runs_b: &[f64]) -> Result<Self> {
        let a = Summary::from_slice(runs_a)?;
        let b = Summary::from_slice(runs_b)?;
        for s in [&a, &b] {
            if s.n() < 2 {
                return Err(CoreError::Stats(mtvar_stats::StatsError::SampleTooSmall {
                    required: 2,
                    actual: s.n() as usize,
                }));
            }
        }
        Ok(Comparison {
            name_a: name_a.to_owned(),
            name_b: name_b.to_owned(),
            a,
            b,
            runs_a: runs_a.to_vec(),
            runs_b: runs_b.to_vec(),
        })
    }

    /// Builds a comparison from two collected [`RunSpace`]s — the form used
    /// with [`crate::runspace::Executor`] output.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Comparison::from_runs`].
    pub fn from_spaces(name_a: &str, a: &RunSpace, name_b: &str, b: &RunSpace) -> Result<Self> {
        Comparison::from_runs(name_a, &a.runtimes(), name_b, &b.runtimes())
    }

    /// Names of the two configurations.
    pub fn names(&self) -> (&str, &str) {
        (&self.name_a, &self.name_b)
    }

    /// Summaries of the two samples.
    pub fn summaries(&self) -> (&Summary, &Summary) {
        (&self.a, &self.b)
    }

    /// Confidence intervals for the two means at `level` (§5.1.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for an invalid level.
    pub fn confidence_intervals(
        &self,
        level: f64,
    ) -> Result<(ConfidenceInterval, ConfidenceInterval)> {
        Ok((
            mean_confidence_interval(&self.a, level)?,
            mean_confidence_interval(&self.b, level)?,
        ))
    }

    /// Whether the two CIs overlap at `level`. Non-overlap bounds the wrong
    /// conclusion probability by `1 − level` (§5.1.1).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for an invalid level.
    pub fn intervals_overlap(&self, level: f64) -> Result<bool> {
        let (ca, cb) = self.confidence_intervals(level)?;
        Ok(ca.overlaps(&cb))
    }

    /// The §5.1.2 hypothesis test, oriented so the statistic is positive when
    /// the *apparently better* (lower-mean) configuration is ahead: tests
    /// `H₀: μ_worse = μ_better` against `μ_worse > μ_better`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if both samples are constant.
    pub fn t_test(&self) -> Result<TTest> {
        let (slow, fast) = if self.a.mean() <= self.b.mean() {
            (&self.b, &self.a)
        } else {
            (&self.a, &self.b)
        };
        Ok(two_sample_t_test(slow, fast, TTestKind::Pooled)?)
    }

    /// Upper bound on the probability that concluding "the lower-mean
    /// configuration is better" is wrong: the one-sided p-value of
    /// [`Comparison::t_test`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if both samples are constant.
    pub fn wrong_conclusion_bound(&self) -> Result<f64> {
        Ok(self.t_test()?.p_one_sided())
    }

    /// The methodology's decision at significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if the test statistic is undefined.
    pub fn verdict(&self, alpha: f64) -> Result<Verdict> {
        let p = self.wrong_conclusion_bound()?;
        if p <= alpha {
            Ok(Verdict::Superior {
                which: if self.a.mean() <= self.b.mean() {
                    Superior::First
                } else {
                    Superior::Second
                },
                wrong_conclusion_bound: p,
            })
        } else {
            Ok(Verdict::Inconclusive { p_value: p })
        }
    }

    /// Jarque–Bera normality diagnostics for both samples. The t-test and
    /// CI machinery assumes approximately normal runtimes; a rejection here
    /// (common when a lock convoy forms in only some runs, bimodalizing the
    /// run space) means the verdict's error bound should be treated as
    /// approximate and more runs collected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] if either sample has fewer than four
    /// runs or is constant.
    pub fn normality(&self) -> Result<(JarqueBera, JarqueBera)> {
        Ok((jarque_bera(&self.runs_a)?, jarque_bera(&self.runs_b)?))
    }

    /// The Table-5 estimate: for each significance level, the minimum number
    /// of runs `n` such that the t-test over the first `n` runs of each
    /// sample rejects the null hypothesis at that level. `None` when even
    /// the full samples do not reject.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if `levels` is empty.
    pub fn min_runs_for_significance(&self, levels: &[f64]) -> Result<Vec<(f64, Option<usize>)>> {
        if levels.is_empty() {
            return Err(CoreError::InvalidExperiment {
                what: "need at least one significance level".into(),
            });
        }
        let max_n = self.runs_a.len().min(self.runs_b.len());
        let mut out = Vec::with_capacity(levels.len());
        for &alpha in levels {
            let mut found = None;
            for n in 2..=max_n {
                let cmp = Comparison::from_runs("a", &self.runs_a[..n], "b", &self.runs_b[..n])?;
                match cmp.t_test() {
                    Ok(t) if t.rejects_one_sided(alpha) => {
                        found = Some(n);
                        break;
                    }
                    _ => {}
                }
            }
            out.push((alpha, found));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clearly_different() -> Comparison {
        Comparison::from_runs(
            "slow",
            &[10.0, 10.2, 9.9, 10.1, 10.0, 10.3],
            "fast",
            &[9.0, 9.2, 8.9, 9.1, 9.0, 9.3],
        )
        .unwrap()
    }

    fn overlapping() -> Comparison {
        Comparison::from_runs("a", &[10.0, 11.0, 9.5, 10.5], "b", &[10.2, 9.8, 10.8, 9.6]).unwrap()
    }

    #[test]
    fn clear_difference_is_conclusive() {
        let c = clearly_different();
        assert!(!c.intervals_overlap(0.95).unwrap());
        let v = c.verdict(0.05).unwrap();
        match v {
            Verdict::Superior {
                which,
                wrong_conclusion_bound,
            } => {
                assert_eq!(which, Superior::Second);
                assert!(wrong_conclusion_bound < 0.001);
            }
            Verdict::Inconclusive { .. } => panic!("should be conclusive"),
        }
        assert!(v.is_conclusive());
    }

    #[test]
    fn overlap_is_inconclusive() {
        let c = overlapping();
        assert!(c.intervals_overlap(0.95).unwrap());
        let v = c.verdict(0.05).unwrap();
        assert!(!v.is_conclusive());
        if let Verdict::Inconclusive { p_value } = v {
            assert!(p_value > 0.05);
        }
    }

    #[test]
    fn t_test_orientation_is_one_sided_for_the_better_config() {
        let c = clearly_different();
        let t = c.t_test().unwrap();
        assert!(
            t.statistic() > 0.0,
            "statistic should favour the faster config"
        );
        assert!(t.p_one_sided() < 0.001);
        // Pooled df = 2n - 2.
        assert!((t.df() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn min_runs_monotone_in_alpha() {
        // Construct samples where significance arrives gradually.
        let a: Vec<f64> = (0..16)
            .map(|i| 10.0 + 0.4 * ((i % 5) as f64 - 2.0))
            .collect();
        let b: Vec<f64> = (0..16)
            .map(|i| 9.6 + 0.4 * (((i + 2) % 5) as f64 - 2.0))
            .collect();
        let c = Comparison::from_runs("a", &a, "b", &b).unwrap();
        let req = c.min_runs_for_significance(&[0.10, 0.05, 0.01]).unwrap();
        // Tighter levels can never need fewer runs.
        let vals: Vec<Option<usize>> = req.iter().map(|&(_, n)| n).collect();
        for w in vals.windows(2) {
            if let (Some(x), Some(y)) = (w[0], w[1]) {
                assert!(x <= y, "tighter alpha needs at least as many runs");
            }
        }
    }

    #[test]
    fn min_runs_none_when_indistinguishable() {
        let c = overlapping();
        let req = c.min_runs_for_significance(&[0.01]).unwrap();
        assert_eq!(req[0].1, None);
    }

    #[test]
    fn accessors() {
        let c = clearly_different();
        assert_eq!(c.names(), ("slow", "fast"));
        let (a, b) = c.summaries();
        assert!(a.mean() > b.mean());
    }

    #[test]
    fn validation() {
        assert!(Comparison::from_runs("a", &[1.0], "b", &[1.0, 2.0]).is_err());
        let c = clearly_different();
        assert!(c.min_runs_for_significance(&[]).is_err());
    }

    #[test]
    fn normality_diagnostics_run() {
        let c = clearly_different();
        let (ja, jb) = c.normality().unwrap();
        // Tight hand-made samples: normality should not be rejected hard.
        assert!((0.0..=1.0).contains(&ja.p_value()));
        assert!((0.0..=1.0).contains(&jb.p_value()));
        // Too-small samples are rejected.
        let tiny = Comparison::from_runs("a", &[1.0, 2.0], "b", &[2.0, 3.0]).unwrap();
        assert!(tiny.normality().is_err());
    }
}
