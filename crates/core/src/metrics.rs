//! Variability metrics (§3.3, §4.2) and time-series windows (§4.3).

use mtvar_sim::stats::RunResult;
use mtvar_stats::describe::Summary;

use crate::{CoreError, Result};

/// The paper's variability metrics over a sample of runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VariabilityReport {
    /// Number of runs.
    pub runs: u64,
    /// Mean runtime (cycles/transaction).
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum runtime.
    pub min: f64,
    /// Maximum runtime.
    pub max: f64,
    /// Coefficient of variation, percent (§3.3).
    pub cov_percent: f64,
    /// Range of variability, percent (§4.2).
    pub range_percent: f64,
}

impl VariabilityReport {
    /// Computes the report from a sample of per-run performance numbers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for an empty or degenerate sample
    /// (fewer than two runs, zero mean, non-finite values).
    pub fn from_runtimes(runtimes: &[f64]) -> Result<Self> {
        let s = Summary::from_slice(runtimes)?;
        Ok(VariabilityReport {
            runs: s.n(),
            mean: s.mean(),
            sd: s.sd(),
            min: s.min(),
            max: s.max(),
            cov_percent: s.coefficient_of_variation()?,
            range_percent: s.range_of_variability()?,
        })
    }
}

/// Cycles-per-transaction over consecutive `window`-transaction windows of
/// one run — the Figure 8 time-variability series.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `window == 0` or the run
/// committed fewer than `window` transactions.
pub fn windowed_series(run: &RunResult, window: usize) -> Result<Vec<f64>> {
    if window == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "window must be >= 1 transaction".into(),
        });
    }
    let n = run.commit_cycles.len();
    if n < window {
        return Err(CoreError::InvalidExperiment {
            what: format!("run committed {n} transactions, fewer than the {window}-txn window"),
        });
    }
    let mut series = Vec::with_capacity(n / window);
    let mut i = 0;
    while i + window <= n {
        series.push(
            run.window_cycles_per_transaction(i, i + window)
                .expect("bounds checked"),
        );
        i += window;
    }
    Ok(series)
}

/// Aligns the windowed series of several runs and returns, per window index,
/// the summary across runs (Figure 8's mean ± sd bands). Series are
/// truncated to the shortest run.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `runs` is empty or any run is
/// shorter than one window.
pub fn windowed_ensemble(runs: &[RunResult], window: usize) -> Result<Vec<Summary>> {
    if runs.is_empty() {
        return Err(CoreError::InvalidExperiment {
            what: "ensemble needs at least one run".into(),
        });
    }
    let series: Vec<Vec<f64>> = runs
        .iter()
        .map(|r| windowed_series(r, window))
        .collect::<Result<_>>()?;
    let len = series.iter().map(Vec::len).min().expect("non-empty");
    let mut out = Vec::with_capacity(len);
    for w in 0..len {
        let col: Vec<f64> = series.iter().map(|s| s[w]).collect();
        out.push(Summary::from_slice(&col)?);
    }
    Ok(out)
}

/// Cycles-per-transaction over consecutive fixed-*duration* windows of one
/// run — the Figures 2–3 view, where the x-axis is wall time and each point
/// averages the transactions completing within an observation interval.
///
/// Returns one entry per full window; `None` where no transaction committed.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `window_cycles == 0` or the
/// run spans less than one window.
pub fn time_windows(run: &RunResult, window_cycles: u64) -> Result<Vec<Option<f64>>> {
    if window_cycles == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "window must span at least one cycle".into(),
        });
    }
    let span = run.end_cycle.saturating_sub(run.start_cycle);
    let windows = (span / window_cycles) as usize;
    if windows == 0 {
        return Err(CoreError::InvalidExperiment {
            what: format!("run spans {span} cycles, less than one {window_cycles}-cycle window"),
        });
    }
    let mut counts = vec![0u64; windows];
    for &c in &run.commit_cycles {
        let idx = (c.saturating_sub(run.start_cycle)) / window_cycles;
        if let Some(slot) = counts.get_mut(idx as usize) {
            *slot += 1;
        }
    }
    Ok(counts
        .into_iter()
        .map(|n| {
            if n == 0 {
                None
            } else {
                Some(window_cycles as f64 / n as f64)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::mem::MemStats;
    use mtvar_sim::proc::ProcStats;
    use mtvar_sim::sched::SchedStats;
    use mtvar_sim::sync::LockStats;

    fn run_with_commits(commits: Vec<u64>) -> RunResult {
        RunResult {
            start_cycle: 0,
            end_cycle: *commits.last().unwrap_or(&0),
            transactions: commits.len() as u64,
            commit_cycles: commits,
            mem: MemStats::default(),
            proc: ProcStats::default(),
            locks: LockStats::default(),
            sched: SchedStats::default(),
            sched_events: Vec::new(),
            cpu_busy_ns: 0,
            cpus: 1,
        }
    }

    #[test]
    fn report_matches_paper_definitions() {
        let r = VariabilityReport::from_runtimes(&[95.0, 100.0, 105.0]).unwrap();
        assert_eq!(r.runs, 3);
        assert!((r.mean - 100.0).abs() < 1e-12);
        assert!((r.cov_percent - 5.0).abs() < 1e-9);
        assert!((r.range_percent - 10.0).abs() < 1e-9);
        assert_eq!(r.min, 95.0);
        assert_eq!(r.max, 105.0);
    }

    #[test]
    fn report_rejects_degenerate_samples() {
        assert!(VariabilityReport::from_runtimes(&[]).is_err());
        assert!(VariabilityReport::from_runtimes(&[1.0]).is_err());
    }

    #[test]
    fn windowed_series_basic() {
        // Commits at 100, 200, 400, 800: windows of 2 => (200-0)/2, (800-200)/2.
        let r = run_with_commits(vec![100, 200, 400, 800]);
        let s = windowed_series(&r, 2).unwrap();
        assert_eq!(s, vec![100.0, 300.0]);
        // Window of 3 drops the tail.
        let s3 = windowed_series(&r, 3).unwrap();
        assert_eq!(s3.len(), 1);
    }

    #[test]
    fn windowed_series_validation() {
        let r = run_with_commits(vec![100, 200]);
        assert!(windowed_series(&r, 0).is_err());
        assert!(windowed_series(&r, 3).is_err());
    }

    #[test]
    fn ensemble_summarizes_across_runs() {
        let a = run_with_commits(vec![100, 200, 300, 400]);
        let b = run_with_commits(vec![120, 240, 360, 480]);
        let e = windowed_ensemble(&[a, b], 2).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].n(), 2);
        assert!((e[0].mean() - (100.0 + 120.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_validation() {
        assert!(windowed_ensemble(&[], 2).is_err());
    }

    #[test]
    fn time_windows_buckets_commits() {
        // Commits at 50, 150, 250, 400: the run spans [0, 400), giving two
        // 200-cycle windows. The first holds 2 commits (100 cycles/txn); the
        // second holds only the 250 commit (the one at exactly cycle 400
        // falls on the boundary and is outside the last full window).
        let r = run_with_commits(vec![50, 150, 250, 400]);
        let w = time_windows(&r, 200).unwrap();
        assert_eq!(w, vec![Some(100.0), Some(200.0)]);
    }

    #[test]
    fn time_windows_empty_window_is_none() {
        let r = run_with_commits(vec![50, 450]);
        // Windows [0,150),[150,300),[300,450): middle one has no commit.
        let w = time_windows(&r, 150).unwrap();
        assert_eq!(w.len(), 3);
        assert!(w[0].is_some());
        assert_eq!(w[1], None);
    }

    #[test]
    fn time_windows_validation() {
        let r = run_with_commits(vec![10]);
        assert!(time_windows(&r, 0).is_err());
        assert!(time_windows(&r, 1000).is_err());
    }
}
