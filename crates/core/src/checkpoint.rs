//! The content-addressed warmup-checkpoint store.
//!
//! Every data point in the paper's figures is a run launched from a
//! checkpoint taken after warmup (§3.2.2); a 100-run × 5-checkpoint study
//! that re-simulates warmup per run pays for it 500 times. The
//! [`CheckpointStore`] makes warmed machine snapshots reusable: an in-memory
//! LRU over [`Checkpoint`]s, content-addressed by
//! `(config fingerprint, workload fingerprint, base seed, warmup length)`,
//! with optional on-disk spill under `target/mtvar-checkpoints/` so warmed
//! state survives the process.
//!
//! Two properties matter for correctness:
//!
//! * **Prefix extension.** [`CheckpointStore::longest_prefix`] finds the
//!   deepest stored snapshot of the same space with a *shorter* warmup, so a
//!   sweep at warmup 2000 restores the warmup-1600 snapshot and simulates
//!   only the remaining 400 transactions. Extending a restored machine is
//!   bit-identical to warming from zero ([`Machine::restore`] guarantees
//!   it), so reuse never changes results.
//! * **Crash-safe spill.** Disk writes go to a temporary file, `fsync`, then
//!   an atomic rename — an interrupted write can never leave a truncated
//!   `.ckpt` behind. Reads validate the frame fingerprint; a corrupt or
//!   truncated file is deleted and reported as a miss, and the caller falls
//!   back to re-simulation.
//!
//! [`Machine::restore`]: mtvar_sim::machine::Machine::restore

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mtvar_sim::checkpoint::Checkpoint;

/// Content address of one warmed snapshot: the complete identity of "this
/// machine, warmed this far". Two sweeps that agree on all four fields may
/// share a checkpoint; any disagreement keys them apart.
///
/// The config fingerprint is taken with the perturbation neutralized
/// (magnitude 0, seed 0) because warmup runs unperturbed — one stored
/// snapshot serves every perturbation magnitude and seed of the same
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckpointKey {
    /// [`config_fingerprint`] of the warmup configuration.
    ///
    /// [`config_fingerprint`]: crate::runspace::config_fingerprint
    pub config: u64,
    /// Workload-factory fingerprint (same construction as the run cache).
    pub workload: u64,
    /// The plan's base perturbation seed.
    pub base_seed: u64,
    /// Warmup length in transactions.
    pub warmup: u64,
}

impl CheckpointKey {
    fn file_name(&self) -> String {
        format!(
            "ck-{:016x}-{:016x}-{:016x}-w{}.ckpt",
            self.config, self.workload, self.base_seed, self.warmup
        )
    }

    /// The filename prefix shared by every warmup length of this space.
    fn file_prefix(&self) -> String {
        format!(
            "ck-{:016x}-{:016x}-{:016x}-w",
            self.config, self.workload, self.base_seed
        )
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    map: HashMap<CheckpointKey, (u64, Arc<Checkpoint>)>,
    tick: u64,
}

impl StoreInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// In-memory LRU of warmed snapshots with optional crash-safe disk spill.
///
/// Shared across executors via `Arc` (see
/// [`Executor::with_checkpoint_store`]); all operations take an internal
/// lock, so `&self` methods are safe from worker threads. Snapshots are
/// themselves held behind `Arc<Checkpoint>`: a hit hands back a shared
/// pointer, so the lock is held only for O(1) bookkeeping — never while a
/// multi-megabyte payload is copied — and concurrent sweeps warming from
/// the same snapshot share one allocation.
///
/// [`Executor::with_checkpoint_store`]: crate::runspace::Executor::with_checkpoint_store
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
    disk: Option<PathBuf>,
    /// Diagnostics from degraded disk operations (unreadable or corrupt
    /// spill files, abandoned prefix searches). Bounded; see
    /// [`CheckpointStore::take_warnings`].
    warnings: Mutex<Vec<String>>,
}

/// How many *additional* prefix candidates [`CheckpointStore::longest_prefix`]
/// tries after its first choice fails validation. Each failure means a
/// corrupt or vanished entry; one retry recovers the common single-bad-file
/// case, while a hard cap keeps a spill directory whose files cannot be
/// deleted (read-only mount) or keep re-materializing from spinning the
/// search forever. Beyond the cap the store warns and reports a miss — the
/// caller re-simulates, which is always correct.
const CORRUPT_RETRY_LIMIT: usize = 1;

/// Cap on buffered warnings; beyond it new warnings still reach stderr but
/// are not stored (a degraded spill dir can fail on every sweep).
const MAX_WARNINGS: usize = 64;

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    /// Default in-memory capacity (snapshots, not bytes).
    pub const DEFAULT_CAPACITY: usize = 32;

    /// The conventional spill directory, `target/mtvar-checkpoints/`.
    pub fn default_spill_dir() -> PathBuf {
        PathBuf::from("target").join("mtvar-checkpoints")
    }

    /// An in-memory store with [`CheckpointStore::DEFAULT_CAPACITY`] entries
    /// and no disk spill.
    pub fn new() -> Self {
        CheckpointStore {
            inner: Mutex::new(StoreInner::default()),
            capacity: Self::DEFAULT_CAPACITY,
            disk: None,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// Sets the in-memory capacity (clamped to >= 1); least-recently-used
    /// snapshots are evicted beyond it. Evicted entries remain readable from
    /// disk when spill is enabled.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Enables disk spill under `dir` (created on first write). Every insert
    /// is written through; misses in memory fall back to disk.
    #[must_use]
    pub fn with_disk_spill(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk = Some(dir.into());
        self
    }

    /// Enables disk spill under [`CheckpointStore::default_spill_dir`].
    #[must_use]
    pub fn with_default_disk_spill(self) -> Self {
        let dir = Self::default_spill_dir();
        self.with_disk_spill(dir)
    }

    /// Number of snapshots currently held in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("store poisoned").map.len()
    }

    /// Whether the in-memory store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every in-memory snapshot (disk files are left alone).
    pub fn clear(&self) {
        self.inner.lock().expect("store poisoned").map.clear();
    }

    /// Drains and returns the warnings accumulated from degraded disk
    /// operations: unreadable spill files, corrupt files (deleted or not),
    /// and prefix searches abandoned after `CORRUPT_RETRY_LIMIT` failed
    /// candidates. Every warning was also written to stderr when it
    /// occurred; this accessor exists so tests and callers can assert on
    /// them programmatically.
    pub fn take_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.warnings.lock().expect("store poisoned"))
    }

    fn warn(&self, message: String) {
        eprintln!("mtvar checkpoint store: {message}");
        let mut warnings = self.warnings.lock().expect("store poisoned");
        if warnings.len() < MAX_WARNINGS {
            warnings.push(message);
        }
    }

    /// Looks up the snapshot for `key`: memory first, then disk. A memory
    /// hit clones only the `Arc`, never the payload. A disk file that fails
    /// frame validation (truncated or corrupt) is deleted and reported as a
    /// miss — the caller re-simulates and the next insert rewrites it whole.
    pub fn get(&self, key: &CheckpointKey) -> Option<Arc<Checkpoint>> {
        {
            let mut inner = self.inner.lock().expect("store poisoned");
            let tick = inner.touch();
            if let Some(entry) = inner.map.get_mut(key) {
                entry.0 = tick;
                return Some(Arc::clone(&entry.1));
            }
        }
        let ck = self.load_from_disk(key)?;
        self.insert_memory(*key, Arc::clone(&ck));
        Some(ck)
    }

    /// Stores a snapshot under `key`, evicting the least-recently-used
    /// in-memory entry beyond capacity and spilling to disk when enabled.
    /// Disk spill is best-effort: an I/O failure degrades to memory-only
    /// caching rather than failing the sweep.
    pub fn insert(&self, key: CheckpointKey, checkpoint: Arc<Checkpoint>) {
        if let Some(dir) = &self.disk {
            let _ = write_atomically(dir, &key.file_name(), &checkpoint.to_bytes());
        }
        self.insert_memory(key, checkpoint);
    }

    /// Finds the stored snapshot of the same `(config, workload, base_seed)`
    /// space with the largest warmup strictly below `key.warmup`, searching
    /// memory and disk. Returns `(warmup, checkpoint)`; the caller restores
    /// it and simulates only the remaining `key.warmup - warmup`
    /// transactions.
    ///
    /// `get` re-validates each candidate (a corrupt disk file becomes a
    /// miss), and the search falls back to the next-deepest prefix — but
    /// only `CORRUPT_RETRY_LIMIT` time(s). An undeletable or
    /// re-materializing corrupt entry must not spin the search; past the
    /// cap it warns and reports a miss so the caller re-simulates.
    pub fn longest_prefix(&self, key: &CheckpointKey) -> Option<(u64, Arc<Checkpoint>)> {
        let mut candidates: Vec<u64> = Vec::new();
        {
            let inner = self.inner.lock().expect("store poisoned");
            for k in inner.map.keys() {
                if k.config == key.config
                    && k.workload == key.workload
                    && k.base_seed == key.base_seed
                    && k.warmup < key.warmup
                {
                    candidates.push(k.warmup);
                }
            }
        }
        if let Some(dir) = &self.disk {
            let prefix = key.file_prefix();
            for entry in fs::read_dir(dir).into_iter().flatten().flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(rest) = name.strip_prefix(&prefix) else {
                    continue;
                };
                let Some(warmup) = rest
                    .strip_suffix(".ckpt")
                    .and_then(|w| w.parse::<u64>().ok())
                else {
                    continue;
                };
                if warmup < key.warmup {
                    candidates.push(warmup);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut failures = 0usize;
        while let Some(warmup) = candidates.pop() {
            let prefix_key = CheckpointKey { warmup, ..*key };
            if let Some(ck) = self.get(&prefix_key) {
                return Some((warmup, ck));
            }
            failures += 1;
            if failures > CORRUPT_RETRY_LIMIT {
                self.warn(format!(
                    "abandoning prefix search for {}{} after {failures} corrupt or \
                     vanished candidate(s); falling back to re-simulation",
                    key.file_prefix(),
                    key.warmup,
                ));
                return None;
            }
        }
        None
    }

    fn insert_memory(&self, key: CheckpointKey, checkpoint: Arc<Checkpoint>) {
        let mut inner = self.inner.lock().expect("store poisoned");
        let tick = inner.touch();
        inner.map.insert(key, (tick, checkpoint));
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| *k)
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
    }

    fn load_from_disk(&self, key: &CheckpointKey) -> Option<Arc<Checkpoint>> {
        let dir = self.disk.as_ref()?;
        let path = dir.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                // Present but unreadable (permissions, a directory squatting
                // on the name, I/O error): surface it — silent misses here
                // hide a degraded spill dir that will fail on every sweep.
                self.warn(format!("spill entry {} is unreadable: {e}", path.display()));
                return None;
            }
        };
        match Checkpoint::from_bytes(&bytes) {
            Ok(ck) => Some(Arc::new(ck)),
            Err(e) => {
                // Truncated or corrupt: remove it so it cannot poison later
                // sweeps, and report a miss so the caller re-simulates.
                match fs::remove_file(&path) {
                    Ok(()) => self.warn(format!(
                        "deleted corrupt spill entry {} ({e})",
                        path.display()
                    )),
                    Err(rm) => self.warn(format!(
                        "corrupt spill entry {} ({e}) could not be deleted: {rm}",
                        path.display()
                    )),
                }
                None
            }
        }
    }
}

/// Writes `bytes` to `dir/name` via temp-file + `fsync` + atomic rename, so
/// an interrupted write never leaves a truncated file under the final name.
/// Shared with the run-result spill ([`crate::resultcache::ResultStore`]),
/// which reuses the same crash-safety machinery.
pub(crate) fn write_atomically(dir: &Path, name: &str, bytes: &[u8]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{name}.tmp"));
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    match fs::rename(&tmp, dir.join(name)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(warmup: u64) -> CheckpointKey {
        CheckpointKey {
            config: 0xC0FF_EE00_DEAD_BEEF,
            workload: 0x1234_5678_9ABC_DEF0,
            base_seed: 7,
            warmup,
        }
    }

    fn snapshot(tag: u8) -> Arc<Checkpoint> {
        Arc::new(Checkpoint::from_payload(vec![tag; 64]))
    }

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtvar-ckpt-test-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_round_trip_and_miss() {
        let store = CheckpointStore::new();
        assert!(store.get(&key(10)).is_none());
        store.insert(key(10), snapshot(1));
        assert_eq!(store.get(&key(10)).unwrap().payload(), &[1u8; 64][..]);
        assert!(store.get(&key(11)).is_none(), "warmup is part of the key");
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = CheckpointStore::new().with_capacity(2);
        store.insert(key(1), snapshot(1));
        store.insert(key(2), snapshot(2));
        // Touch key(1) so key(2) is the LRU when key(3) arrives.
        assert!(store.get(&key(1)).is_some());
        store.insert(key(3), snapshot(3));
        assert_eq!(store.len(), 2);
        assert!(store.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(store.get(&key(1)).is_some());
        assert!(store.get(&key(3)).is_some());
    }

    #[test]
    fn longest_prefix_picks_deepest_shorter_warmup() {
        let store = CheckpointStore::new();
        store.insert(key(100), snapshot(1));
        store.insert(key(400), snapshot(4));
        store.insert(key(900), snapshot(9));
        let (warmup, ck) = store.longest_prefix(&key(800)).unwrap();
        assert_eq!(warmup, 400);
        assert_eq!(ck.payload(), &[4u8; 64][..]);
        // An exact-warmup entry is not a *prefix* of itself.
        let (warmup, _) = store.longest_prefix(&key(900)).unwrap();
        assert_eq!(warmup, 400);
        assert!(store.longest_prefix(&key(100)).is_none());
        // Different space: no sharing.
        let other = CheckpointKey {
            base_seed: 8,
            ..key(800)
        };
        assert!(store.longest_prefix(&other).is_none());
    }

    #[test]
    fn disk_spill_survives_a_fresh_store() {
        let dir = temp_dir("spill");
        {
            let store = CheckpointStore::new().with_disk_spill(&dir);
            store.insert(key(50), snapshot(5));
        }
        let fresh = CheckpointStore::new().with_disk_spill(&dir);
        assert!(fresh.is_empty());
        let ck = fresh.get(&key(50)).expect("disk hit");
        assert_eq!(ck.payload(), &[5u8; 64][..]);
        assert_eq!(fresh.len(), 1, "disk hits are promoted into memory");
        // longest_prefix also sees disk-only entries.
        let fresh2 = CheckpointStore::new().with_disk_spill(&dir);
        let (warmup, _) = fresh2.longest_prefix(&key(60)).unwrap();
        assert_eq!(warmup, 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_file_is_deleted_and_misses() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::new().with_disk_spill(&dir);
        store.insert(key(50), snapshot(5));
        let path = dir.join(key(50).file_name());
        assert!(path.exists());

        // Truncate the file mid-frame, as an interrupted non-atomic write
        // would have; then corrupt a byte in a full-length copy.
        let full = fs::read(&path).unwrap();
        for mangled in [full[..full.len() / 2].to_vec(), {
            let mut m = full.clone();
            let last = m.len() - 1;
            m[last] ^= 0xFF;
            m
        }] {
            fs::write(&path, &mangled).unwrap();
            let fresh = CheckpointStore::new().with_disk_spill(&dir);
            assert!(
                fresh.get(&key(50)).is_none(),
                "corrupt file must read as a miss"
            );
            assert!(!path.exists(), "corrupt file must be deleted");
            assert!(
                fresh.longest_prefix(&key(60)).is_none(),
                "a deleted prefix must not resurface"
            );
            // Re-insert for the next mangling round.
            store.insert(key(50), snapshot(5));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_search_retry_is_bounded_over_corrupt_files() {
        let dir = temp_dir("bounded-retry");
        fs::create_dir_all(&dir).unwrap();
        // Four garbage .ckpt files at increasing warmups — every candidate
        // fails frame validation. The search must try the deepest, retry
        // once on the next-deepest, then give up with a warning instead of
        // walking (or spinning through) the whole chain.
        for warmup in [10u64, 20, 30, 40] {
            fs::write(dir.join(key(warmup).file_name()), b"not a checkpoint").unwrap();
        }
        let store = CheckpointStore::new().with_disk_spill(&dir);
        assert!(store.longest_prefix(&key(100)).is_none());
        let surviving: Vec<bool> = [10u64, 20, 30, 40]
            .iter()
            .map(|w| dir.join(key(*w).file_name()).exists())
            .collect();
        assert_eq!(
            surviving,
            [true, true, false, false],
            "only the two attempted candidates (40, then 30) may be touched"
        );
        let warnings = store.take_warnings();
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("abandoning prefix search")),
            "the abandoned search must be surfaced: {warnings:?}"
        );
        assert!(
            store.take_warnings().is_empty(),
            "take_warnings drains the buffer"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn undeletable_corrupt_entries_terminate_with_a_warning() {
        let dir = temp_dir("undeletable");
        // Plant corrupt entries the store *cannot unlink*: directories
        // squatting on the .ckpt names (remove_file fails on a directory,
        // and read fails without deleting). Before the retry bound, a chain
        // of these drove one recursion per entry; re-materializing paths
        // span forever.
        for warmup in [10u64, 20, 30, 40, 50] {
            fs::create_dir_all(dir.join(key(warmup).file_name())).unwrap();
        }
        let store = CheckpointStore::new().with_disk_spill(&dir);
        assert!(store.get(&key(50)).is_none(), "unreadable entry is a miss");
        assert!(store.longest_prefix(&key(100)).is_none());
        for warmup in [10u64, 20, 30, 40, 50] {
            assert!(
                dir.join(key(warmup).file_name()).exists(),
                "undeletable entries must survive, not be retried forever"
            );
        }
        let warnings = store.take_warnings();
        assert!(
            warnings.iter().filter(|w| w.contains("unreadable")).count() >= 2,
            "unreadable entries must be surfaced: {warnings:?}"
        );
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("abandoning prefix search")),
            "the bounded search must warn when giving up: {warnings:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let dir = temp_dir("atomic");
        let store = CheckpointStore::new().with_disk_spill(&dir);
        store.insert(key(9), snapshot(9));
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        let _ = fs::remove_dir_all(&dir);
    }
}
