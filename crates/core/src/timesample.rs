//! Time sampling (§5.2): runs from multiple starting points, and the ANOVA
//! that decides whether they are necessary.
//!
//! "ANOVA tells us whether it is sufficient to use runs from a single
//! starting point, or whether the sample should contain runs from many
//! starting points."

use std::fmt;
use std::sync::Arc;

use mtvar_sim::checkpoint::{Checkpoint, Snap};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::rng::Xoshiro256StarStar;
use mtvar_sim::workload::Workload;
use mtvar_stats::infer::{anova_one_way, Anova};

use crate::runspace::{Executor, RunPlan};
use crate::{CoreError, Result};

/// How starting points are placed through the workload's lifetime.
///
/// The paper uses systematic sampling and notes that "sampling techniques
/// other than systematic sampling can be used to select representative time
/// samples" as future work; the random and stratified placements implement
/// that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SamplingStrategy {
    /// Fixed spacing: point `i` at `(i+1) · span / points` (the paper's
    /// §5.2 choice).
    Systematic,
    /// Uniformly random positions over the span.
    Random {
        /// Seed for the placement draw.
        seed: u64,
    },
    /// One uniformly random position inside each of `points` equal strata —
    /// random coverage without clustering.
    Stratified {
        /// Seed for the placement draw.
        seed: u64,
    },
}

/// Computes sorted checkpoint positions (cumulative warmup transactions,
/// each in `[1, span_txns]`) for `points` starting points over a lifetime of
/// `span_txns`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] if `points < 2` or the span is
/// too short to give each point a distinct position.
pub fn checkpoint_positions(
    strategy: SamplingStrategy,
    points: usize,
    span_txns: u64,
) -> Result<Vec<u64>> {
    if points < 2 {
        return Err(CoreError::InvalidExperiment {
            what: "time sampling needs at least two starting points".into(),
        });
    }
    if span_txns < points as u64 {
        return Err(CoreError::InvalidExperiment {
            what: format!("a {span_txns}-transaction span cannot host {points} distinct points"),
        });
    }
    let n = points as u64;
    let mut positions: Vec<u64> = match strategy {
        SamplingStrategy::Systematic => (1..=n).map(|i| i * span_txns / n).collect(),
        SamplingStrategy::Random { seed } => {
            let mut rng = Xoshiro256StarStar::new(seed ^ 0x7153_A3B1_E5EE_DF1C);
            (0..n).map(|_| 1 + rng.next_below(span_txns)).collect()
        }
        SamplingStrategy::Stratified { seed } => {
            let mut rng = Xoshiro256StarStar::new(seed ^ 0x7153_A3B1_E5EE_DF1C);
            (0..n)
                .map(|i| {
                    let lo = i * span_txns / n;
                    let hi = (i + 1) * span_txns / n;
                    lo + 1 + rng.next_below((hi - lo).max(1))
                })
                .collect()
        }
    };
    positions.sort_unstable();
    // Force strict monotonicity (random draws may collide).
    for i in 1..positions.len() {
        if positions[i] <= positions[i - 1] {
            positions[i] = positions[i - 1] + 1;
        }
    }
    Ok(positions)
}

/// Per-checkpoint run groups: `groups[p]` holds the cycles-per-transaction
/// of every perturbed run launched from starting point `p`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSampleStudy {
    groups: Vec<Vec<f64>>,
    /// Warmup transactions executed before each starting point, aligned with
    /// `groups`.
    checkpoints: Vec<u64>,
    /// Total invariant violations of each checkpoint's sweep, aligned with
    /// `groups` (all zeros for externally collected or unmonitored groups).
    violations: Vec<u64>,
}

impl TimeSampleStudy {
    /// Wraps externally collected groups.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] if fewer than two groups or
    /// the label count mismatches.
    pub fn from_groups(groups: Vec<Vec<f64>>, checkpoints: Vec<u64>) -> Result<Self> {
        if groups.len() < 2 {
            return Err(CoreError::InvalidExperiment {
                what: "time-sampling analysis needs at least two starting points".into(),
            });
        }
        if groups.len() != checkpoints.len() {
            return Err(CoreError::InvalidExperiment {
                what: "each group needs a checkpoint label".into(),
            });
        }
        let violations = vec![0; groups.len()];
        Ok(TimeSampleStudy {
            groups,
            checkpoints,
            violations,
        })
    }

    /// The run groups.
    pub fn groups(&self) -> &[Vec<f64>] {
        &self.groups
    }

    /// The checkpoint positions (cumulative warmup transactions).
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    /// Total invariant violations per checkpoint sweep, aligned with
    /// [`TimeSampleStudy::groups`]. All zeros when the sweeps ran
    /// unmonitored (use a strict or monitored executor for the counts to
    /// mean anything) or the study was built from external groups.
    pub fn violation_counts(&self) -> &[u64] {
        &self.violations
    }

    /// Whether no checkpoint sweep recorded an invariant violation — as
    /// strong as the monitoring behind the sweeps.
    pub fn is_clean(&self) -> bool {
        self.violations.iter().all(|&v| v == 0)
    }

    /// One-way ANOVA of between-checkpoint vs within-checkpoint variability.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate groups.
    pub fn anova(&self) -> Result<Anova> {
        let refs: Vec<&[f64]> = self.groups.iter().map(Vec::as_slice).collect();
        Ok(anova_one_way(&refs)?)
    }

    /// The §5.2 decision: whether between-group (time) variability is
    /// significant at `alpha`, i.e. whether simulations "should be performed
    /// from different starting points".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stats`] for degenerate groups.
    pub fn requires_time_sampling(&self, alpha: f64) -> Result<bool> {
        Ok(self.anova()?.is_significant(alpha))
    }
}

/// Collects a [`TimeSampleStudy`] by systematic sampling (§5.2): advance the
/// machine `spacing_txns` transactions between consecutive starting points,
/// checkpoint at each, and launch `plan` (perturbed runs) from every
/// checkpoint.
///
/// The machine should already be past its initial warmup when passed in.
///
/// # Errors
///
/// Propagates simulator errors; returns [`CoreError::InvalidExperiment`]
/// for a degenerate design.
pub fn sweep_checkpoints<W>(
    machine: &mut Machine<W>,
    points: usize,
    spacing_txns: u64,
    plan: &RunPlan,
) -> Result<TimeSampleStudy>
where
    W: Workload + Clone + Send + Sync + fmt::Debug,
{
    sweep_checkpoints_with(&Executor::sequential(), machine, points, spacing_txns, plan)
}

/// [`sweep_checkpoints`] driven by an explicit [`Executor`]: each
/// checkpoint's run space fans out over the executor's thread pool, and the
/// executor's cache carries run results across overlapping sweeps.
///
/// # Errors
///
/// Propagates simulator errors; returns [`CoreError::InvalidExperiment`]
/// for a degenerate design.
pub fn sweep_checkpoints_with<W>(
    executor: &Executor,
    machine: &mut Machine<W>,
    points: usize,
    spacing_txns: u64,
    plan: &RunPlan,
) -> Result<TimeSampleStudy>
where
    W: Workload + Clone + Send + Sync + fmt::Debug,
{
    if spacing_txns == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "sweep needs positive spacing".into(),
        });
    }
    let positions: Vec<u64> = (1..=points as u64).map(|i| i * spacing_txns).collect();
    sweep_checkpoints_at_with(executor, machine, &positions, plan)
}

/// Like [`sweep_checkpoints`], but with explicit checkpoint positions
/// (cumulative warmup transactions, strictly increasing) — the entry point
/// for [`SamplingStrategy`]-placed starting points from
/// [`checkpoint_positions`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] for fewer than two positions or
/// non-increasing positions, and propagates simulator errors.
pub fn sweep_checkpoints_at<W>(
    machine: &mut Machine<W>,
    positions: &[u64],
    plan: &RunPlan,
) -> Result<TimeSampleStudy>
where
    W: Workload + Clone + Send + Sync + fmt::Debug,
{
    sweep_checkpoints_at_with(&Executor::sequential(), machine, positions, plan)
}

/// [`sweep_checkpoints_at`] driven by an explicit [`Executor`].
///
/// Per-checkpoint seed independence comes from the executor's seed
/// derivation: each checkpoint's machine state fingerprints differently, so
/// the derived seed streams are decorrelated without manual seed blocking
/// (formerly `base_seed + p * 10_000`, which collided for plans of more than
/// 10,000 runs and correlated identically-seeded points).
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] for fewer than two positions or
/// non-increasing positions, and propagates simulator errors.
pub fn sweep_checkpoints_at_with<W>(
    executor: &Executor,
    machine: &mut Machine<W>,
    positions: &[u64],
    plan: &RunPlan,
) -> Result<TimeSampleStudy>
where
    W: Workload + Clone + Send + Sync + fmt::Debug,
{
    if positions.len() < 2 {
        return Err(CoreError::InvalidExperiment {
            what: "sweep needs >= 2 starting points".into(),
        });
    }
    if positions.windows(2).any(|w| w[1] <= w[0]) || positions[0] == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "checkpoint positions must be strictly increasing and positive".into(),
        });
    }
    let mut groups = Vec::with_capacity(positions.len());
    let mut checkpoints = Vec::with_capacity(positions.len());
    let mut violations = Vec::with_capacity(positions.len());
    let mut warmed: u64 = 0;
    for &pos in positions {
        machine.run_transactions(pos - warmed)?;
        warmed = pos;
        let ckpt = machine.checkpoint();
        let space = executor.run_space_from_checkpoint(&ckpt, plan)?;
        groups.push(space.runtimes());
        checkpoints.push(warmed);
        violations.push(space.total_violations());
    }
    let mut study = TimeSampleStudy::from_groups(groups, checkpoints)?;
    study.violations = violations;
    Ok(study)
}

/// The snapshot-native form of [`sweep_checkpoints_at_with`]: builds the
/// machine itself from `(config, make_workload)`, warms each position via
/// [`Executor::warm_checkpoint`] — so an attached
/// [`CheckpointStore`](crate::checkpoint::CheckpointStore) memoizes the
/// warmed states across sweeps and processes — and forks each position's
/// perturbed run space from the restored snapshot with
/// [`Executor::run_space_from_snapshot`].
///
/// Consecutive positions chain even without a store: position `p[i+1]`
/// extends position `p[i]`'s snapshot, so one sweep simulates
/// `max(positions)` warmup transactions in total rather than their sum.
/// Warmup is unperturbed under this protocol (the perturbation stream starts
/// at each run's measurement start); see `EXPERIMENTS.md` for how that
/// differs from the legacy perturb-from-cycle-zero semantics.
///
/// # Errors
///
/// Returns [`CoreError::InvalidExperiment`] for fewer than two positions or
/// non-increasing positions, and propagates simulator errors.
pub fn sweep_positions_with<W, F>(
    executor: &Executor,
    config: &MachineConfig,
    make_workload: F,
    positions: &[u64],
    plan: &RunPlan,
) -> Result<TimeSampleStudy>
where
    W: Workload + Snap + Clone + Send + Sync,
    F: Fn() -> W + Sync,
{
    if positions.len() < 2 {
        return Err(CoreError::InvalidExperiment {
            what: "sweep needs >= 2 starting points".into(),
        });
    }
    if positions.windows(2).any(|w| w[1] <= w[0]) || positions[0] == 0 {
        return Err(CoreError::InvalidExperiment {
            what: "checkpoint positions must be strictly increasing and positive".into(),
        });
    }
    let mut groups = Vec::with_capacity(positions.len());
    let mut checkpoints = Vec::with_capacity(positions.len());
    let mut violations = Vec::with_capacity(positions.len());
    let mut prev: Option<(u64, Arc<Checkpoint>)> = None;
    for &pos in positions {
        let snap = executor.warm_checkpoint(
            config,
            &make_workload,
            plan.base_seed,
            pos,
            prev.as_ref().map(|(warmed, ck)| (*warmed, ck.as_ref())),
        )?;
        let space =
            executor.run_space_from_snapshot::<W>(&snap, config.perturbation_max_ns, plan)?;
        groups.push(space.runtimes());
        checkpoints.push(pos);
        violations.push(space.total_violations());
        prev = Some((pos, snap));
    }
    let mut study = TimeSampleStudy::from_groups(groups, checkpoints)?;
    study.violations = violations;
    Ok(study)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvar_sim::config::MachineConfig;
    use mtvar_sim::workload::SharingWorkload;

    #[test]
    fn study_validation() {
        assert!(TimeSampleStudy::from_groups(vec![vec![1.0]], vec![0]).is_err());
        assert!(TimeSampleStudy::from_groups(vec![vec![1.0], vec![2.0]], vec![0]).is_err());
    }

    #[test]
    fn anova_detects_group_shift() {
        let study = TimeSampleStudy::from_groups(
            vec![
                vec![10.0, 10.1, 9.9, 10.0],
                vec![12.0, 12.1, 11.9, 12.0],
                vec![14.0, 14.1, 13.9, 14.0],
            ],
            vec![100, 200, 300],
        )
        .unwrap();
        assert!(study.requires_time_sampling(0.01).unwrap());
        assert!(study.anova().unwrap().f_statistic() > 10.0);
    }

    #[test]
    fn anova_accepts_homogeneous_groups() {
        let study = TimeSampleStudy::from_groups(
            vec![
                vec![10.0, 10.4, 9.6, 10.1],
                vec![10.1, 9.7, 10.3, 10.0],
                vec![9.9, 10.2, 9.8, 10.2],
            ],
            vec![100, 200, 300],
        )
        .unwrap();
        assert!(!study.requires_time_sampling(0.05).unwrap());
    }

    #[test]
    fn sweep_collects_expected_shape() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 0);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, 3, 30, 2048, 8)).unwrap();
        let plan = RunPlan::new(20).with_runs(3);
        let study = sweep_checkpoints(&mut m, 2, 15, &plan).unwrap();
        assert_eq!(study.groups().len(), 2);
        assert_eq!(study.groups()[0].len(), 3);
        assert_eq!(study.checkpoints(), &[15, 30]);
        assert_eq!(study.violation_counts(), &[0, 0]);
        assert!(study.is_clean());
    }

    #[test]
    fn sweep_surfaces_per_checkpoint_violations() {
        use mtvar_sim::config::FaultSpec;
        use mtvar_sim::mem::CoherenceState;
        // Checkpoints sit at cumulative commits 15 and 30 and each run
        // measures 20 transactions, so runs from the first checkpoint span
        // commits 16-35 and runs from the second span 31-50. Commit 33 lies
        // in both windows (and past the sweep's own warmup advances), so the
        // fault fires inside every group's runs and nowhere else.
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 0)
            .with_invariant_checks()
            .with_fault(FaultSpec::coherence(
                33,
                1,
                0xFA11,
                CoherenceState::Exclusive,
            ));
        let mut m = Machine::new(cfg, SharingWorkload::new(4, 3, 30, 2048, 8)).unwrap();
        let plan = RunPlan::new(20).with_runs(2);
        let study = sweep_checkpoints(&mut m, 2, 15, &plan).unwrap();
        assert!(!study.is_clean());
        assert!(
            study.violation_counts().iter().all(|&v| v > 0),
            "every checkpoint's runs cross commit 33: {:?}",
            study.violation_counts()
        );
    }

    #[test]
    fn sweep_validation() {
        let cfg = MachineConfig::hpca2003().with_cpus(2);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, 3, 30, 2048, 8)).unwrap();
        let plan = RunPlan::new(10).with_runs(2);
        assert!(sweep_checkpoints(&mut m, 1, 10, &plan).is_err());
        assert!(sweep_checkpoints(&mut m, 2, 0, &plan).is_err());
        assert!(sweep_checkpoints_at(&mut m, &[10, 10], &plan).is_err());
        assert!(sweep_checkpoints_at(&mut m, &[0, 10], &plan).is_err());
    }

    #[test]
    fn systematic_positions_are_even() {
        let p = checkpoint_positions(SamplingStrategy::Systematic, 5, 1000).unwrap();
        assert_eq!(p, vec![200, 400, 600, 800, 1000]);
    }

    #[test]
    fn random_positions_are_sorted_distinct_in_span() {
        let p = checkpoint_positions(SamplingStrategy::Random { seed: 7 }, 10, 5000).unwrap();
        assert_eq!(p.len(), 10);
        assert!(p.windows(2).all(|w| w[1] > w[0]));
        assert!(p.iter().all(|&x| x >= 1));
        // Same seed reproduces, different seed differs.
        let q = checkpoint_positions(SamplingStrategy::Random { seed: 7 }, 10, 5000).unwrap();
        assert_eq!(p, q);
        let r = checkpoint_positions(SamplingStrategy::Random { seed: 8 }, 10, 5000).unwrap();
        assert_ne!(p, r);
    }

    #[test]
    fn stratified_positions_hit_every_stratum() {
        let points = 8;
        let span = 8000;
        let p =
            checkpoint_positions(SamplingStrategy::Stratified { seed: 3 }, points, span).unwrap();
        for (i, &pos) in p.iter().enumerate() {
            let lo = (i as u64) * span / points as u64;
            let hi = (i as u64 + 1) * span / points as u64;
            assert!(
                pos > lo && pos <= hi + 1,
                "position {pos} escapes stratum [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn positions_validation() {
        assert!(checkpoint_positions(SamplingStrategy::Systematic, 1, 100).is_err());
        assert!(checkpoint_positions(SamplingStrategy::Systematic, 10, 5).is_err());
    }

    #[test]
    fn sweep_positions_is_store_invariant_and_validates() {
        use crate::checkpoint::CheckpointStore;
        use std::sync::Arc;
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 0);
        let wl = || SharingWorkload::new(4, 3, 30, 2048, 8);
        let plan = RunPlan::new(15).with_runs(3);
        let bare = Executor::sequential();
        let a = sweep_positions_with(&bare, &cfg, wl, &[10, 25], &plan).unwrap();
        assert_eq!(a.checkpoints(), &[10, 25]);
        assert_eq!(a.groups().len(), 2);
        assert_eq!(a.groups()[0].len(), 3);

        // A store must change the work done, never the statistics.
        let store = Arc::new(CheckpointStore::new());
        let stored = Executor::sequential().with_checkpoint_store(store.clone());
        let b = sweep_positions_with(&stored, &cfg, wl, &[10, 25], &plan).unwrap();
        assert_eq!(a, b);
        assert_eq!(store.len(), 2, "one snapshot memoized per position");
        let c = sweep_positions_with(&stored, &cfg, wl, &[10, 25], &plan).unwrap();
        assert_eq!(a, c);
        assert_eq!(store.len(), 2);

        assert!(sweep_positions_with(&bare, &cfg, wl, &[10], &plan).is_err());
        assert!(sweep_positions_with(&bare, &cfg, wl, &[10, 10], &plan).is_err());
        assert!(sweep_positions_with(&bare, &cfg, wl, &[0, 10], &plan).is_err());
    }

    #[test]
    fn sweep_at_explicit_positions() {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(2)
            .with_perturbation(4, 0);
        let mut m = Machine::new(cfg, SharingWorkload::new(4, 3, 30, 2048, 8)).unwrap();
        let plan = RunPlan::new(15).with_runs(2);
        let study = sweep_checkpoints_at(&mut m, &[10, 25, 45], &plan).unwrap();
        assert_eq!(study.checkpoints(), &[10, 25, 45]);
        assert_eq!(study.groups().len(), 3);
    }
}
