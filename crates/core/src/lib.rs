//! `mtvar-core`: the statistical simulation methodology of *Variability in
//! Architectural Simulations of Multi-Threaded Workloads* (Alameldeen &
//! Wood, HPCA 2003).
//!
//! The paper's central claim is that single-simulation experiments on
//! multi-threaded workloads draw the **wrong conclusion** alarmingly often
//! (31% of run pairs in its cache-associativity experiment), and that a
//! simple methodology fixes it: inject small pseudo-random timing
//! perturbations to expose the workload's space of executions, run several
//! simulations per configuration, and apply classical statistics. This crate
//! is that methodology:
//!
//! * [`runspace`] — execute the space of perturbed runs for one
//!   configuration (optionally from a checkpoint), sequentially or in
//!   parallel via the deterministic [`runspace::Executor`]: seeds derive
//!   from `(configuration, run index)`, so results are bit-identical for
//!   any thread count, with run-result caching and progress observation.
//!   By default a sweep with warmup simulates the warmup *once*, snapshots,
//!   and forks each perturbed run from the restored snapshot (§3.2.2's
//!   checkpoint protocol); `RunPlan::with_shared_warmup(false)` keeps the
//!   legacy perturb-from-cycle-zero path.
//! * [`checkpoint`] — the content-addressed [`checkpoint::CheckpointStore`]
//!   behind shared warmup: an in-memory LRU of machine snapshots with
//!   crash-safe disk spill and longest-prefix warmup extension.
//! * [`resultcache`] — the run-result cache's persistent layer
//!   ([`resultcache::ResultStore`]): completed measurements and their
//!   violation records spill to disk with the same crash-safe framing, so a
//!   restarted process (or a long-lived service) keeps its warm results.
//! * [`metrics`] — coefficient of variation, range of variability, and
//!   windowed time series (§4.2, §4.3).
//! * [`wcr`] — the wrong-conclusion ratio by pairwise enumeration (§4.1).
//! * [`compare`] — confidence intervals, hypothesis tests, minimum-run
//!   estimation and verdicts for comparison experiments (§5.1).
//! * [`timesample`] — checkpoint sweeps and one-way ANOVA to decide whether
//!   time sampling is required (§5.2).
//! * [`sampling`] — 2024-era sampling methodologies (stratified, ranked-set,
//!   live) driven over the checkpoint substrate, with an evaluation harness
//!   scoring them by WCR and CI coverage against full-run ground truth.
//! * [`budget`] — the paper's stated future work: splitting a fixed
//!   simulation budget between run count and run length.
//! * [`experiment`] — the one-call declarative form of the whole workflow:
//!   configurations in, variability + WCR + verdict tables out.
//! * [`report`] — plain-text tables used by the benches and examples.
//!
//! # Example: a variability-aware comparison
//!
//! ```
//! # fn main() -> Result<(), mtvar_core::CoreError> {
//! use mtvar_core::compare::Comparison;
//!
//! // Cycles/transaction from 6 perturbed runs per configuration.
//! let base = [4.61e6, 4.72e6, 4.55e6, 4.68e6, 4.59e6, 4.70e6];
//! let enhanced = [4.41e6, 4.52e6, 4.38e6, 4.49e6, 4.44e6, 4.47e6];
//! let cmp = Comparison::from_runs("2-way", &base, "4-way", &enhanced)?;
//! let verdict = cmp.verdict(0.05)?;
//! assert!(verdict.is_conclusive());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod checkpoint;
pub mod compare;
pub mod experiment;
pub mod golden;
pub mod metrics;
pub mod report;
pub mod resultcache;
pub mod runspace;
pub mod sampling;
pub mod timesample;
pub mod wcr;

use std::fmt;

/// Error type for methodology operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying simulation failed.
    Sim(mtvar_sim::SimError),
    /// An underlying statistical computation failed.
    Stats(mtvar_stats::StatsError),
    /// The experiment design itself was invalid.
    InvalidExperiment {
        /// Description of the violated constraint.
        what: String,
    },
    /// A run inside an executor sweep violated simulator invariants and the
    /// executor was in strict mode
    /// ([`runspace::Executor::with_invariant_checks`]). The statistical
    /// aggregate was never built: a polluted run space is not data.
    InvariantViolation {
        /// Run index (seed order) of the lowest-indexed violating run.
        run: usize,
        /// That run's stored violation reports (capped by the monitor; the
        /// run's uncapped total can be larger).
        report: Vec<mtvar_sim::check::Violation>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::InvalidExperiment { what } => {
                write!(f, "invalid experiment: {what}")
            }
            CoreError::InvariantViolation { run, report } => {
                write!(f, "run {run} violated {} invariant(s)", report.len())?;
                if let Some(first) = report.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::InvalidExperiment { .. } => None,
            CoreError::InvariantViolation { .. } => None,
        }
    }
}

impl From<mtvar_sim::SimError> for CoreError {
    fn from(e: mtvar_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<mtvar_stats::StatsError> for CoreError {
    fn from(e: mtvar_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let s: CoreError = mtvar_sim::SimError::InvalidConfig { what: "x".into() }.into();
        assert!(s.to_string().contains("simulation error"));
        let t: CoreError = mtvar_stats::StatsError::EmptySample.into();
        assert!(t.to_string().contains("statistics error"));
        let e = CoreError::InvalidExperiment {
            what: "needs runs".into(),
        };
        assert!(e.to_string().contains("needs runs"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let s: CoreError = mtvar_stats::StatsError::EmptySample.into();
        assert!(s.source().is_some());
    }
}
