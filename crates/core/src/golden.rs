//! Golden-run regression fingerprints.
//!
//! A deterministic simulator's strongest regression test is bit-exactness:
//! for a pinned `(configuration, workload seed, perturbation seed)` the
//! entire [`RunResult`] must never change unless a change was *intended*.
//! This module condenses a run into one `u64` digest and stores one digest
//! per benchmark in a human-diffable text file, so an accidental behaviour
//! change in any layer — workload generation, processor timing, coherence,
//! scheduling — trips a single cheap comparison.
//!
//! The digest covers every integer field of the result, including the full
//! per-transaction commit-cycle vector. It deliberately excludes
//! `sched_events`: the log is empty unless explicitly enabled and is purely
//! observational, and golden configurations leave it off.
//!
//! Re-blessing: when a change is intentional, regenerate the golden file by
//! running the harness with `MTVAR_BLESS=1` (see `tests/golden_runs.rs` at
//! the workspace root) and commit the diff alongside the change that caused
//! it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mtvar_sim::stats::RunResult;

use crate::CoreError;

/// Streaming FNV-1a over `u64` words with a SplitMix64 finalizer — the same
/// construction `runspace` uses for configuration fingerprints, so digests
/// share its dispersion properties.
#[derive(Debug, Clone, Copy)]
struct Digest(u64);

impl Digest {
    const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Self {
        Digest(Self::FNV_BASIS)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Digests every integer field of a [`RunResult`] into one `u64`.
///
/// Covered: cycle bounds, transaction count, the full commit-cycle vector
/// (length and values), all 14 memory counters, all 7 processor counters,
/// all 4 lock counters, all 4 scheduler counters, busy time, and CPU count.
/// Excluded: `sched_events` (observational; empty unless enabled).
pub fn run_digest(result: &RunResult) -> u64 {
    let mut d = Digest::new();
    d.push(result.start_cycle);
    d.push(result.end_cycle);
    d.push(result.transactions);
    d.push(result.commit_cycles.len() as u64);
    for &c in &result.commit_cycles {
        d.push(c);
    }
    let m = &result.mem;
    for w in [
        m.l1i_hits,
        m.l1i_misses,
        m.l1d_hits,
        m.l1d_misses,
        m.l2_hits,
        m.l2_misses,
        m.upgrades,
        m.silent_upgrades,
        m.cache_to_cache,
        m.memory_fetches,
        m.writebacks,
        m.invalidations,
        m.bus_wait_ns,
        m.perturbation_ns,
    ] {
        d.push(w);
    }
    let p = &result.proc;
    for w in [
        p.instructions,
        p.branches,
        p.branch_mispredicts,
        p.indirect_mispredicts,
        p.ras_mispredicts,
        p.window_stall_ns,
        p.drain_ns,
    ] {
        d.push(w);
    }
    let l = &result.locks;
    for w in [l.acquisitions, l.contended, l.wait_ns, l.hold_ns] {
        d.push(w);
    }
    let s = &result.sched;
    for w in [s.dispatches, s.preemptions, s.migrations, s.yields] {
        d.push(w);
    }
    d.push(result.cpu_busy_ns);
    d.push(result.cpus as u64);
    d.finish()
}

/// A named collection of golden digests with a stable, diff-friendly text
/// encoding: one `name = 0xHEX` line per entry, sorted by name, `#` for
/// comments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoldenFile {
    entries: BTreeMap<String, u64>,
}

impl GoldenFile {
    /// Creates an empty golden file.
    pub fn new() -> Self {
        GoldenFile::default()
    }

    /// Parses the text encoding.
    ///
    /// Blank lines and lines starting with `#` are ignored; every other
    /// line must be `name = 0xHEX`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidExperiment`] naming the first malformed
    /// line.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut entries = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = || CoreError::InvalidExperiment {
                what: format!(
                    "golden file line {}: expected `name = 0xHEX`, got `{line}`",
                    idx + 1
                ),
            };
            let (name, value) = line.split_once('=').ok_or_else(bad)?;
            let hex = value.trim().strip_prefix("0x").ok_or_else(bad)?;
            let digest = u64::from_str_radix(hex, 16).map_err(|_| bad())?;
            entries.insert(name.trim().to_string(), digest);
        }
        Ok(GoldenFile { entries })
    }

    /// Renders the sorted text encoding (round-trips through [`parse`]).
    ///
    /// [`parse`]: GoldenFile::parse
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Golden run digests — regenerate with MTVAR_BLESS=1 (see tests/golden_runs.rs).\n",
        );
        for (name, digest) in &self.entries {
            let _ = writeln!(out, "{name} = {digest:#018x}");
        }
        out
    }

    /// Records (or replaces) a digest.
    pub fn set(&mut self, name: &str, digest: u64) {
        self.entries.insert(name.to_string(), digest);
    }

    /// Looks up a digest by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        let mut r = RunResult {
            start_cycle: 100,
            end_cycle: 5000,
            transactions: 3,
            commit_cycles: vec![1200, 2600, 4100],
            mem: Default::default(),
            proc: Default::default(),
            locks: Default::default(),
            sched: Default::default(),
            sched_events: Vec::new(),
            cpu_busy_ns: 9000,
            cpus: 4,
        };
        r.mem.l1d_hits = 40;
        r.mem.l1d_misses = 7;
        r.proc.instructions = 123;
        r.locks.acquisitions = 5;
        r.sched.dispatches = 11;
        r
    }

    #[test]
    fn digest_is_deterministic_and_field_sensitive() {
        let a = sample_result();
        let base = run_digest(&a);
        assert_eq!(base, run_digest(&a.clone()));

        // Every category of field must perturb the digest.
        let mut b = a.clone();
        b.end_cycle += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.commit_cycles[1] += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.mem.silent_upgrades += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.proc.ras_mispredicts += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.locks.wait_ns += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.sched.migrations += 1;
        assert_ne!(base, run_digest(&b));
        let mut b = a.clone();
        b.cpus += 1;
        assert_ne!(base, run_digest(&b));
    }

    #[test]
    fn commit_vector_length_and_order_matter() {
        let a = sample_result();
        let mut b = a.clone();
        b.commit_cycles.push(4500);
        assert_ne!(run_digest(&a), run_digest(&b));
        let mut c = a.clone();
        c.commit_cycles.swap(0, 2);
        assert_ne!(run_digest(&a), run_digest(&c));
    }

    #[test]
    fn golden_file_round_trips() {
        let mut g = GoldenFile::new();
        g.set("barnes", 0xDEAD_BEEF_0000_0001);
        g.set("apache", 0x0000_0000_0000_002A);
        let text = g.render();
        let parsed = GoldenFile::parse(&text).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.get("apache"), Some(0x2A));
        assert_eq!(parsed.get("missing"), None);
        // Rendered sorted by name.
        let names: Vec<&str> = parsed.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["apache", "barnes"]);
    }

    #[test]
    fn parse_tolerates_comments_and_rejects_garbage() {
        let g = GoldenFile::parse("# header\n\n  ocean = 0xFF\n").unwrap();
        assert_eq!(g.get("ocean"), Some(0xFF));
        assert!(GoldenFile::parse("ocean 0xFF").is_err());
        assert!(GoldenFile::parse("ocean = FF").is_err());
        assert!(GoldenFile::parse("ocean = 0xZZ").is_err());
    }

    #[test]
    fn empty_file_parses_empty() {
        let g = GoldenFile::parse("# nothing here\n").unwrap();
        assert!(g.is_empty());
    }
}
