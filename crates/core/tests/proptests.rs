//! Randomized tests of the methodology layer's invariants.
//!
//! Formerly written against the `proptest` crate; rewritten as deterministic
//! seeded sweeps (driven by the simulator's own RNG) so the suite builds with
//! no network access.

use mtvar_core::compare::Comparison;
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::wcr::{wrong_conclusion_ratio, Superior};
use mtvar_sim::rng::Xoshiro256StarStar;

/// A runtime-like sample: values in [1, 1e6), length in [min_len, 24).
fn runtimes(rng: &mut Xoshiro256StarStar, min_len: usize) -> Vec<f64> {
    let n = rng.next_range(min_len as u64, 23) as usize;
    (0..n)
        .map(|_| 1.0 + rng.next_f64() * (1.0e6 - 1.0))
        .collect()
}

const CASES: usize = 200;

#[test]
fn wcr_is_bounded_and_antisymmetric() {
    let mut g = Xoshiro256StarStar::new(0xC0_0001);
    for _ in 0..CASES {
        let a = runtimes(&mut g, 1);
        let b = runtimes(&mut g, 1);
        match wrong_conclusion_ratio(&a, &b) {
            Ok(ab) => {
                assert!((0.0..=100.0).contains(&ab.wcr_percent));
                assert_eq!(ab.total_pairs, (a.len() * b.len()) as u64);
                let ba = wrong_conclusion_ratio(&b, &a).unwrap();
                assert!((ab.wcr_percent - ba.wcr_percent).abs() < 1e-9);
                assert_ne!(ab.superior, ba.superior);
            }
            Err(_) => {
                // Only identical means are rejected.
                let ma = a.iter().sum::<f64>() / a.len() as f64;
                let mb = b.iter().sum::<f64>() / b.len() as f64;
                assert!((ma - mb).abs() < 1e-6 * ma.max(mb));
            }
        }
    }
}

#[test]
fn wcr_is_zero_for_disjoint_ranges() {
    let mut g = Xoshiro256StarStar::new(0xC0_0002);
    for _ in 0..CASES {
        let a = runtimes(&mut g, 1);
        let shift = 1.0e6 + g.next_f64() * 1.0e6;
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let w = wrong_conclusion_ratio(&a, &b).unwrap();
        assert_eq!(w.wcr_percent, 0.0);
        assert_eq!(w.superior, Superior::First);
    }
}

#[test]
fn wcr_wrong_pairs_never_exceed_total() {
    let mut g = Xoshiro256StarStar::new(0xC0_0003);
    for _ in 0..CASES {
        let a = runtimes(&mut g, 2);
        let b = runtimes(&mut g, 2);
        if let Ok(w) = wrong_conclusion_ratio(&a, &b) {
            // The WCR can exceed 50% (means are not medians), but the wrong
            // pairs can never exceed the enumerated total.
            assert!(w.wrong_pairs <= w.total_pairs);
        }
    }
}

#[test]
fn variability_report_invariants() {
    let mut g = Xoshiro256StarStar::new(0xC0_0004);
    for _ in 0..CASES {
        let rt = runtimes(&mut g, 2);
        if !rt.iter().any(|&v| (v - rt[0]).abs() > 1e-9) {
            continue;
        }
        let rep = VariabilityReport::from_runtimes(&rt).unwrap();
        assert!(rep.min <= rep.mean + 1e-9);
        assert!(rep.mean <= rep.max + 1e-9);
        assert!(rep.cov_percent >= 0.0);
        assert!(rep.range_percent >= 0.0);
        // Both metrics must be finite and consistent with the extremes.
        let expected_range = 100.0 * (rep.max - rep.min) / rep.mean;
        assert!((rep.range_percent - expected_range).abs() < 1e-9);
    }
}

#[test]
fn comparison_p_values_are_probabilities() {
    let mut g = Xoshiro256StarStar::new(0xC0_0005);
    for _ in 0..CASES {
        let a = runtimes(&mut g, 2);
        let b = runtimes(&mut g, 2);
        if !(a.iter().any(|&v| (v - a[0]).abs() > 1e-9)
            || b.iter().any(|&v| (v - b[0]).abs() > 1e-9))
        {
            continue;
        }
        let cmp = Comparison::from_runs("a", &a, "b", &b).unwrap();
        let p = cmp.wrong_conclusion_bound().unwrap();
        assert!((0.0..=1.0).contains(&p));
        let v = cmp.verdict(0.05).unwrap();
        match v {
            mtvar_core::compare::Verdict::Superior {
                wrong_conclusion_bound,
                ..
            } => {
                assert!(wrong_conclusion_bound <= 0.05)
            }
            mtvar_core::compare::Verdict::Inconclusive { p_value } => assert!(p_value > 0.05),
        }
    }
}

#[test]
fn ci_overlap_is_symmetric() {
    let mut g = Xoshiro256StarStar::new(0xC0_0006);
    for _ in 0..CASES {
        let a = runtimes(&mut g, 3);
        let b = runtimes(&mut g, 3);
        if !a.iter().any(|&v| (v - a[0]).abs() > 1e-9)
            || !b.iter().any(|&v| (v - b[0]).abs() > 1e-9)
        {
            continue;
        }
        let ab = Comparison::from_runs("a", &a, "b", &b).unwrap();
        let ba = Comparison::from_runs("b", &b, "a", &a).unwrap();
        assert_eq!(
            ab.intervals_overlap(0.95).unwrap(),
            ba.intervals_overlap(0.95).unwrap()
        );
    }
}
