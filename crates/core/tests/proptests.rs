//! Property-based tests of the methodology layer's invariants.

use proptest::prelude::*;

use mtvar_core::compare::Comparison;
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::wcr::{wrong_conclusion_ratio, Superior};

fn runtimes(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0..1.0e6f64, min_len..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn wcr_is_bounded_and_antisymmetric(a in runtimes(1), b in runtimes(1)) {
        match wrong_conclusion_ratio(&a, &b) {
            Ok(ab) => {
                prop_assert!((0.0..=100.0).contains(&ab.wcr_percent));
                prop_assert_eq!(ab.total_pairs, (a.len() * b.len()) as u64);
                let ba = wrong_conclusion_ratio(&b, &a).unwrap();
                prop_assert!((ab.wcr_percent - ba.wcr_percent).abs() < 1e-9);
                prop_assert_ne!(ab.superior, ba.superior);
            }
            Err(_) => {
                // Only identical means are rejected.
                let ma = a.iter().sum::<f64>() / a.len() as f64;
                let mb = b.iter().sum::<f64>() / b.len() as f64;
                prop_assert!((ma - mb).abs() < 1e-6 * ma.max(mb));
            }
        }
    }

    #[test]
    fn wcr_is_zero_for_disjoint_ranges(a in runtimes(1), shift in 1.0e6..2.0e6f64) {
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let w = wrong_conclusion_ratio(&a, &b).unwrap();
        prop_assert_eq!(w.wcr_percent, 0.0);
        prop_assert_eq!(w.superior, Superior::First);
    }

    #[test]
    fn wcr_under_50_means_averages_agree_with_majority(a in runtimes(2), b in runtimes(2)) {
        if let Ok(w) = wrong_conclusion_ratio(&a, &b) {
            // By definition the WCR counts the minority direction only when
            // means and majority agree; it can exceed 50% (means are not
            // medians), but the total never exceeds 100%.
            prop_assert!(w.wrong_pairs <= w.total_pairs);
        }
    }

    #[test]
    fn variability_report_invariants(rt in runtimes(2)) {
        prop_assume!(rt.iter().any(|&v| (v - rt[0]).abs() > 1e-9));
        let rep = VariabilityReport::from_runtimes(&rt).unwrap();
        prop_assert!(rep.min <= rep.mean + 1e-9);
        prop_assert!(rep.mean <= rep.max + 1e-9);
        prop_assert!(rep.cov_percent >= 0.0);
        prop_assert!(rep.range_percent >= 0.0);
        // Range of variability always dominates CoV for n >= 2... not in
        // general, but both must be finite and consistent with the extremes.
        let expected_range = 100.0 * (rep.max - rep.min) / rep.mean;
        prop_assert!((rep.range_percent - expected_range).abs() < 1e-9);
    }

    #[test]
    fn comparison_p_values_are_probabilities(a in runtimes(2), b in runtimes(2)) {
        prop_assume!(a.iter().any(|&v| (v - a[0]).abs() > 1e-9)
                  || b.iter().any(|&v| (v - b[0]).abs() > 1e-9));
        let cmp = Comparison::from_runs("a", &a, "b", &b).unwrap();
        let p = cmp.wrong_conclusion_bound().unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        // The one-sided bound for the better config never exceeds 1/2 by
        // more than numerical noise when means differ... it can approach
        // 0.5 exactly for near-ties; just sanity-check the verdict logic.
        let v = cmp.verdict(0.05).unwrap();
        match v {
            mtvar_core::compare::Verdict::Superior { wrong_conclusion_bound, .. } =>
                prop_assert!(wrong_conclusion_bound <= 0.05),
            mtvar_core::compare::Verdict::Inconclusive { p_value } =>
                prop_assert!(p_value > 0.05),
        }
    }

    #[test]
    fn ci_overlap_is_symmetric(a in runtimes(3), b in runtimes(3)) {
        prop_assume!(a.iter().any(|&v| (v - a[0]).abs() > 1e-9));
        prop_assume!(b.iter().any(|&v| (v - b[0]).abs() > 1e-9));
        let ab = Comparison::from_runs("a", &a, "b", &b).unwrap();
        let ba = Comparison::from_runs("b", &b, "a", &a).unwrap();
        prop_assert_eq!(
            ab.intervals_overlap(0.95).unwrap(),
            ba.intervals_overlap(0.95).unwrap()
        );
    }
}
