#!/usr/bin/env sh
# Benchmark-record regression gate: parse every BENCH_*.json in the repo
# root and fail if an asserted field has regressed — a determinism flag
# gone false, or a measured ratio that fell below the floor the file
# itself declares. Plain sh + awk, no jq, fully offline.
#
#   sh scripts/bench_check.sh
set -eu

cd "$(dirname "$0")/.."

status=0

# First numeric value following `"key":` in a file (JSON one-key-per-line,
# which is how every bench writer formats its record).
jnum() {
    awk -v key="$2" '
        index($0, "\"" key "\"") {
            s = substr($0, index($0, "\"" key "\"") + length(key) + 2)
            if (match(s, /-?[0-9][0-9.]*/)) {
                print substr(s, RSTART, RLENGTH)
                exit
            }
        }' "$1"
}

# First boolean value following `"key":` in a file (empty if absent).
jbool() {
    awk -v key="$2" '
        index($0, "\"" key "\"") {
            s = substr($0, index($0, "\"" key "\"") + length(key) + 2)
            if (match(s, /true|false/)) {
                print substr(s, RSTART, RLENGTH)
                exit
            }
        }' "$1"
}

# a >= b, floating point.
ge() {
    awk -v a="$1" -v b="$2" 'BEGIN { exit !(a + 0 >= b + 0) }'
}

require_num() { # file key -> value (fails the gate if missing)
    v=$(jnum "$1" "$2")
    if [ -z "$v" ]; then
        echo "FAIL $1: required field \"$2\" is missing" >&2
        status=1
        echo 0
    else
        echo "$v"
    fi
}

found_any=0
for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    found_any=1

    # Every asserted determinism/identity flag anywhere in the file must
    # read true: these record "the optimized path produced bit-identical
    # statistics", and false means the benchmark itself caught a
    # divergence (or someone hand-edited the record to hide one).
    if grep -nE '"(statistics_identical|bit_identical|savings_asserted|contains_truth)"[[:space:]]*:[[:space:]]*false' "$f"; then
        echo "FAIL $f: an asserted identity flag is false (see lines above)" >&2
        status=1
    fi
done

if [ "$found_any" -eq 0 ]; then
    echo "FAIL: no BENCH_*.json files found in the repo root" >&2
    exit 1
fi

# BENCH_snapshot.json: the fork-vs-restore speedup must hold its floor,
# and the parallel template-decode sweep must hold its own floor wherever
# the host had the cores to enforce it (single-core hosts record
# speedup_enforced=false and are exempt — there is nothing to overlap).
f=BENCH_snapshot.json
if [ -f "$f" ]; then
    speedup=$(require_num "$f" speedup)
    floor=$(require_num "$f" required_speedup)
    if ! ge "$speedup" "$floor"; then
        echo "FAIL $f: fork speedup $speedup fell below required $floor" >&2
        status=1
    fi
    enforced=$(jbool "$f" speedup_enforced)
    if [ "$enforced" = "true" ]; then
        decode=$(require_num "$f" speedup_at_4_threads)
        if ! ge "$decode" "$floor"; then
            echo "FAIL $f: 4-thread decode speedup $decode fell below required $floor" >&2
            status=1
        fi
    fi
fi

# BENCH_serve.json: coalesced warmup sharing must keep its savings floor.
f=BENCH_serve.json
if [ -f "$f" ]; then
    savings=$(require_num "$f" aggregate_savings)
    floor=$(require_num "$f" required_savings)
    if ! ge "$savings" "$floor"; then
        echo "FAIL $f: aggregate savings $savings fell below required $floor" >&2
        status=1
    fi
fi

if [ "$status" -ne 0 ]; then
    exit "$status"
fi
echo "bench records OK"
