#!/usr/bin/env sh
# Tier-1 verification gate: everything a change must pass before merging.
# Runs fully offline (the workspace has no registry dependencies).
#
#   sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo build --release --features invariant-monitor"
cargo build --release --offline --features invariant-monitor

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> oracle differential suite"
cargo test -q --offline -p mtvar-sim --test oracle_diff

echo "==> golden-run digests (invariant monitor forced on)"
cargo test -q --offline --features invariant-monitor --test golden_runs

echo "==> executor violations channel (invariant monitor off)"
cargo test -q --offline --test executor_violations

echo "==> executor violations channel (invariant monitor on)"
cargo test -q --offline --features invariant-monitor --test executor_violations

echo "==> checkpoint bit-identity gate (invariant monitor off)"
cargo test -q --offline --test checkpoint_identity

echo "==> checkpoint bit-identity gate (invariant monitor on)"
cargo test -q --offline --features invariant-monitor --test checkpoint_identity

echo "==> statistical self-validation"
cargo test -q --offline -p mtvar-stats --test selfcheck

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> verify OK"
