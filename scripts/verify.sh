#!/usr/bin/env sh
# Tier-1 verification gate: everything a change must pass before merging.
# Runs fully offline (the workspace has no registry dependencies).
#
#   sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo build --release --features invariant-monitor"
cargo build --release --offline --features invariant-monitor

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> oracle differential suite"
cargo test -q --offline -p mtvar-sim --test oracle_diff

echo "==> golden-run digests (invariant monitor forced on)"
cargo test -q --offline --features invariant-monitor --test golden_runs

echo "==> executor violations channel (invariant monitor off)"
cargo test -q --offline --test executor_violations

echo "==> executor violations channel (invariant monitor on)"
cargo test -q --offline --features invariant-monitor --test executor_violations

echo "==> checkpoint bit-identity gate (invariant monitor off)"
cargo test -q --offline --test checkpoint_identity

echo "==> checkpoint bit-identity gate (invariant monitor on)"
cargo test -q --offline --features invariant-monitor --test checkpoint_identity

# Scaling gate: the directory transport and the bitset snoop filter must
# agree with their references at every size — snooping-vs-directory in
# lockstep plus the directory-vs-oracle diff (monitor off and on), and the
# filter against a naive residency model at 8/17/64/128 nodes. The 64-CPU
# directory configs themselves are pinned by the golden (+dir64 digests)
# and checkpoint suites above and in release below.
echo "==> scaling gate: snoop-vs-directory transport differential (monitor off)"
cargo test -q --offline -p mtvar-sim --test coherence_diff

echo "==> scaling gate: snoop-vs-directory transport differential (monitor on)"
cargo test -q --offline -p mtvar-sim --features invariant-monitor --test coherence_diff

echo "==> scaling gate: bitset snoop-filter property tests (8/17/64/128 nodes)"
cargo test -q --offline -p mtvar-sim --test proptests

echo "==> statistical self-validation"
cargo test -q --offline -p mtvar-stats --test selfcheck

echo "==> sampling estimators: CI coverage self-validation"
cargo test -q --offline -p mtvar-stats --test sampling_selfcheck

echo "==> sampling estimators: fast accuracy/cost gate vs full-run truth"
cargo test -q --offline --test sampling_eval

# Kernel-parity gate: the optimized event queue, snoop filter, and
# directory transport must reproduce every golden digest and checkpoint
# fingerprint in release mode, where the filter's and directory's debug
# differentials against full broadcast are compiled out and the filtered
# paths run alone. Debug builds covered the same suites above (including
# the +dir64 digests and the 64-CPU directory checkpoint case) with the
# differential asserts active.
echo "==> kernel parity: golden digests, release (pure filtered snoop path)"
cargo test -q --offline --release --test golden_runs

echo "==> kernel parity: checkpoint bit-identity, release"
cargo test -q --offline --release --test checkpoint_identity

echo "==> kernel parity: event-queue differential fuzz"
cargo test -q --offline -p mtvar-sim --test equeue_fuzz

echo "==> kernel parity: snoop-filter checkpoint round-trip"
cargo test -q --offline --test snoop_filter_checkpoint

echo "==> kernel parity: steady-state allocation budget"
cargo test -q --offline --test alloc_steady_state

# Snapshot gate: the sectioned checkpoint format and copy-on-write fork
# path. Decode fuzz proves every frame mutation is an error, never a
# panic; the bounded-retry suite pins the corrupt-spill fallback in the
# checkpoint store; the alloc-budget suite (release, so capacity seeds
# face real payload sizes) pins encode-fits-seed and fork-vs-restore
# cost. Feature off and on: the invariant monitor rides inside the
# Sched section, so both frame shapes must hold the line.
echo "==> snapshot gate: decode fuzz over frames and payloads"
cargo test -q --offline -p mtvar-sim --test checkpoint_fuzz

echo "==> snapshot gate: decode fuzz (invariant monitor on)"
cargo test -q --offline -p mtvar-sim --features invariant-monitor --test checkpoint_fuzz

echo "==> snapshot gate: bounded retry over corrupt spill files"
cargo test -q --offline -p mtvar-core checkpoint::

echo "==> snapshot gate: restore/fork allocation budget, release"
cargo test -q --offline --release --test alloc_steady_state

echo "==> snapshot gate: restore/fork allocation budget, release (invariant monitor on)"
cargo test -q --offline --release --features invariant-monitor --test alloc_steady_state

# Service gate: the run-space daemon. Frame fuzz proves every mutated or
# hostile request/response frame errors without panicking or allocating
# attacker-sized buffers; the determinism suite proves N concurrent clients
# get bit-identical digests with N-1 sweeps cache-hit, drains reject new
# submissions with typed errors, and disk spill replays across a restart;
# the smoke run pins the headline claim end to end — a digest streamed
# through the socket equals the batch executor's for the same sweep.
echo "==> service gate: protocol frame fuzz"
cargo test -q --offline -p mtvar-serve --test protocol_fuzz

echo "==> service gate: served determinism, drain, cancel, spill replay"
cargo test -q --offline -p mtvar-serve --test served_determinism

echo "==> service gate: served determinism (invariant monitor on)"
cargo test -q --offline -p mtvar-serve --features invariant-monitor --test served_determinism

echo "==> service gate: daemon + CLI smoke (served digest == batch digest)"
cargo build -q --release --offline -p mtvar-serve --bin mtvar
MTVAR_BIN=target/release/mtvar
SOCK="${TMPDIR:-/tmp}/mtvar-verify-$$.sock"
SWEEP="--cpus 4 --runs 4 --transactions 30 --warmup 20 --wl-threads 4"
"$MTVAR_BIN" serve --socket "$SOCK" --dispatchers 2 --threads 2 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.05; i=$((i + 1)); done
SERVED=$("$MTVAR_BIN" submit --socket "$SOCK" --quiet $SWEEP | grep '^digest:')
BATCH=$("$MTVAR_BIN" batch $SWEEP | grep '^digest:')
if [ "$SERVED" != "$BATCH" ]; then
    echo "served $SERVED does not match batch $BATCH" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
"$MTVAR_BIN" stats --socket "$SOCK" > /dev/null
"$MTVAR_BIN" shutdown --socket "$SOCK" > /dev/null
wait "$SERVE_PID"
echo "    served $SERVED == batch digest"

echo "==> bench records: asserted fields must not regress"
sh scripts/bench_check.sh

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo doc --no-deps (rustdoc must be warning-free)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "==> verify OK"
