#!/usr/bin/env sh
# Tier-1 verification gate: everything a change must pass before merging.
# Runs fully offline (the workspace has no registry dependencies).
#
#   sh scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> verify OK"
