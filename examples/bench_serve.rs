//! Run-space service benchmark: queue throughput through the daemon's
//! admission/dispatch path, and the warmup-coalescing win when overlapping
//! sweeps share a warm-checkpoint family. Written to `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release --example bench_serve
//! ```
//!
//! Phase 1 pushes a burst of small, distinct sweeps through one server from
//! several concurrent clients and reports end-to-end jobs/second (socket,
//! frame codec, queue, dispatcher, executor, and result streaming all
//! included). Phase 2 submits two sweeps that differ **only in perturbation
//! magnitude** — the §3.3 knob — so they share one `(config, workload,
//! seed, warmup)` warmup family: the coalescer elects one leader to
//! simulate the warmup and the other job follows, halving the aggregate
//! warmup transactions simulated. The savings are asserted, not observed:
//! the run aborts if the coalescer fails to collapse the family.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mtvar_serve::client::{Client, SweepOutcome};
use mtvar_serve::protocol::{ConfigSpec, PlanSpec, Priority, SweepSpec, WorkloadSpec};
use mtvar_serve::server::{ServeConfig, Server};

/// Burst size for the throughput phase.
const BURST_JOBS: usize = 24;
/// Concurrent submitting clients in the throughput phase.
const CLIENTS: usize = 6;
/// Warmup transactions shared by the coalescing pair.
const SHARED_WARMUP: u64 = 120;
/// Minimum accepted aggregate-warmup savings when two overlapping sweeps
/// coalesce: two demanded warmups, one simulated.
const REQUIRED_SAVINGS: f64 = 2.0;

fn socket_path(tag: &str) -> std::path::PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mtv-bench-{}-{tag}-{n}.sock", std::process::id()))
}

fn small_sweep(seed: u64) -> SweepSpec {
    SweepSpec {
        config: ConfigSpec {
            cpus: 4,
            perturbation_max_ns: 4,
            l2_associativity: None,
            dram_latency_ns: None,
            directory: false,
        },
        workload: WorkloadSpec::Sharing {
            threads: 4,
            seed: 42,
            ops_per_txn: 40,
            footprint_blocks: 2048,
            lock_every: 10,
        },
        plan: PlanSpec {
            runs: 3,
            transactions: 25,
            warmup: 0,
            base_seed: seed,
            shared_warmup: true,
        },
        priority: Priority::Normal,
    }
}

/// Phase 1: distinct jobs (different base seeds, so no cache overlap)
/// bursted from several clients. Returns (jobs/sec, total wall seconds).
fn throughput_phase() -> (f64, f64) {
    let socket = socket_path("tput");
    let handle = Server::start(ServeConfig {
        dispatchers: 4,
        executor_threads: 2,
        queue_limit: BURST_JOBS + CLIENTS,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..CLIENTS {
            let socket = socket.clone();
            scope.spawn(move || {
                let client = Client::new(&socket);
                let mut job = client_index;
                while job < BURST_JOBS {
                    let outcome = client
                        .submit(small_sweep(job as u64), |_| {})
                        .expect("submit");
                    assert!(matches!(outcome, SweepOutcome::Done(_)));
                    job += CLIENTS;
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    let stats = Client::new(&socket).stats().expect("stats");
    assert_eq!(stats.completed, BURST_JOBS as u64, "every job completed");
    assert_eq!(stats.failed, 0);
    Client::new(&socket).shutdown().expect("shutdown");
    handle.join();
    (BURST_JOBS as f64 / wall, wall)
}

/// Phase 2: two sweeps differing only in perturbation magnitude, submitted
/// simultaneously to two dispatchers. Warmup neutralizes perturbation, so
/// both land in one family: one leader simulates `SHARED_WARMUP`
/// transactions, one follower forks the snapshot. Returns (leaders,
/// followers, savings factor).
fn coalescing_phase() -> (u64, u64, f64) {
    let socket = socket_path("coal");
    let handle = Server::start(ServeConfig {
        dispatchers: 2,
        executor_threads: 2,
        ..ServeConfig::new(&socket)
    })
    .expect("start server");

    let mut specs = Vec::new();
    for perturbation in [2u64, 8] {
        let mut spec = small_sweep(0);
        spec.config.perturbation_max_ns = perturbation;
        spec.plan.warmup = SHARED_WARMUP;
        spec.plan.runs = 4;
        spec.plan.transactions = 40;
        specs.push(spec);
    }
    std::thread::scope(|scope| {
        for spec in specs {
            let socket = socket.clone();
            scope.spawn(move || {
                let outcome = Client::new(&socket).submit(spec, |_| {}).expect("submit");
                assert!(matches!(outcome, SweepOutcome::Done(_)));
            });
        }
    });

    let stats = Client::new(&socket).stats().expect("stats");
    Client::new(&socket).shutdown().expect("shutdown");
    handle.join();

    let leaders = stats.coalesce_leaders;
    let followers = stats.coalesce_followers;
    // Single-flight makes this deterministic regardless of scheduling: the
    // second job either waits on the in-flight warmup or finds it done —
    // both count as a follower, never a second leader.
    assert_eq!(leaders, 1, "one warmup family, one leader");
    assert_eq!(followers, 1, "the overlapping sweep followed");
    let savings = (leaders + followers) as f64 / leaders as f64;
    assert!(
        savings >= REQUIRED_SAVINGS,
        "coalescing must save at least {REQUIRED_SAVINGS}x of the aggregate \
         warmup transactions (measured {savings:.2}x)"
    );
    (leaders, followers, savings)
}

fn main() {
    println!(
        "run-space service: {BURST_JOBS} distinct jobs from {CLIENTS} clients, then a \
         coalescing pair sharing a {SHARED_WARMUP}-txn warmup"
    );

    let (jobs_per_sec, wall) = throughput_phase();
    println!("  queue throughput   : {jobs_per_sec:.1} jobs/s ({wall:.3} s for {BURST_JOBS} jobs)");

    let (leaders, followers, savings) = coalescing_phase();
    let demanded = (leaders + followers) * SHARED_WARMUP;
    let simulated = leaders * SHARED_WARMUP;
    println!(
        "  coalescing         : {leaders} leader, {followers} follower; \
         {demanded} warmup txns demanded, {simulated} simulated"
    );
    println!("  warmup savings     : {savings:.2}x (required >= {REQUIRED_SAVINGS:.1}x)");

    let json = format!(
        "{{\n  \"workload\": \"4-CPU sharing microbenchmark; burst of {BURST_JOBS} distinct 3-run sweeps from {CLIENTS} clients, then two 4-run sweeps differing only in perturbation magnitude sharing a {SHARED_WARMUP}-txn warmup\",\n  \"queue\": {{\n    \"jobs\": {BURST_JOBS},\n    \"clients\": {CLIENTS},\n    \"wall_seconds\": {wall:.3},\n    \"jobs_per_second\": {jobs_per_sec:.1}\n  }},\n  \"coalescing\": {{\n    \"leaders\": {leaders},\n    \"followers\": {followers},\n    \"warmup_transactions_demanded\": {demanded},\n    \"warmup_transactions_simulated\": {simulated},\n    \"aggregate_savings\": {savings:.2},\n    \"required_savings\": {REQUIRED_SAVINGS:.1}\n  }},\n  \"savings_asserted\": true\n}}\n"
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
