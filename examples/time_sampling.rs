//! Time sampling (§5.2): checkpoints, ANOVA, and deciding whether runs from
//! one starting point are enough.
//!
//! SPECjbb is the paper's showcase: almost no space variability within a
//! checkpoint, yet checkpoint means drift by tens of percent as the heap
//! grows and GC behaviour shifts — so single-checkpoint studies silently
//! measure a phase, not the workload.
//!
//! ```text
//! cargo run --release --example time_sampling
//! ```

use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_core::timesample::sweep_checkpoints_with;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_stats::describe::Summary;
use mtvar_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
    let mut machine = Machine::new(cfg, Benchmark::Specjbb.workload(16, 42))?;

    // Six starting points, 1,500 transactions apart, five perturbed
    // 400-transaction runs from each. Each checkpoint's run space fans out
    // over the executor's threads; seeds derive from the checkpoint state,
    // so the groups are decorrelated and reproducible.
    let executor = Executor::new();
    println!(
        "sweeping checkpoints through the SPECjbb lifetime on {} thread(s)...",
        executor.threads()
    );
    let plan = RunPlan::new(400).with_runs(5);
    let study = sweep_checkpoints_with(&executor, &mut machine, 6, 1_500, &plan)?;
    if !study.is_clean() {
        println!(
            "  !! invariant violations per checkpoint: {:?}",
            study.violation_counts()
        );
    }

    println!("\n  checkpoint (txns warmed)   cycles/txn mean ± sd");
    for (ck, group) in study.checkpoints().iter().zip(study.groups()) {
        let s = Summary::from_slice(group)?;
        println!("  {ck:>22}   {:>9.1} ± {:.2}", s.mean(), s.sd());
    }

    let anova = study.anova()?;
    println!(
        "\n  ANOVA: F({:.0}, {:.0}) = {:.2}, p = {:.3e}",
        anova.df_between(),
        anova.df_within(),
        anova.f_statistic(),
        anova.p_value()
    );
    if study.requires_time_sampling(0.05)? {
        println!(
            "  between-checkpoint variability is significant: single-checkpoint \
             experiments would measure a phase, not the workload. Sample runs \
             from multiple starting points."
        );
    } else {
        println!("  checkpoints are statistically interchangeable: one starting point suffices.");
    }
    Ok(())
}
