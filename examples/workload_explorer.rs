//! Explore the seven benchmark profiles: run each briefly on the paper's
//! target and print its fingerprint — thread count, transaction size,
//! memory behaviour, lock contention, and where its variability comes from.
//!
//! ```text
//! cargo run --release --example workload_explorer [benchmark]
//! ```

use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::workload::Workload;
use mtvar_stats::describe::Summary;
use mtvar_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = std::env::args().nth(1);
    // One executor across all profiles: each benchmark's small run space
    // (4 perturbed runs) executes in parallel, and the first run supplies
    // the detailed event counts below.
    let executor = Executor::new();
    for b in Benchmark::ALL {
        if let Some(f) = &filter {
            if b.name() != f {
                continue;
            }
        }
        let cfg = MachineConfig::hpca2003()
            .with_perturbation(4, 1)
            .with_invariant_checks();
        let txns = match b {
            Benchmark::Barnes | Benchmark::Ocean => 16,
            Benchmark::Ecperf => 40,
            Benchmark::Slashcode => 60,
            _ => 300,
        };
        let plan = RunPlan::new(txns).with_runs(4);
        let space = executor.run_space(&cfg, || b.workload(16, 42), &plan)?;
        if !space.is_clean() {
            println!(
                "  !! {} invariant violation(s) in this profile",
                space.total_violations()
            );
        }
        let run = &space.results()[0];
        let cov = Summary::from_slice(&space.runtimes())?.coefficient_of_variation()?;

        println!("== {} ==", b.name());
        println!(
            "  threads: {:>4}   measured txns: {:>6}   cycles/txn: {:>9.1}   CoV over {} runs: {:.2}%",
            b.workload(16, 42).thread_count(),
            run.transactions,
            run.cycles_per_transaction(),
            space.len(),
            cov
        );
        let m = &run.mem;
        let total = m.data_accesses().max(1);
        println!(
            "  memory: {:>8} data refs; L1D hit {:>5.1}%, L2 miss ratio {:>5.1}%, c2c {:>6}, upgrades {:>5}",
            m.data_accesses(),
            100.0 * m.l1d_hits as f64 / total as f64,
            100.0 * m.l2_miss_ratio(),
            m.cache_to_cache,
            m.upgrades
        );
        println!(
            "  locks: {:>6} acquisitions, {:>4.1}% contended, {:>9} ns waited",
            run.locks.acquisitions,
            100.0 * run.locks.contention_ratio(),
            run.locks.wait_ns
        );
        println!(
            "  sched: {:>5} dispatches, {:>4} preemptions, {:>4} migrations",
            run.sched.dispatches, run.sched.preemptions, run.sched.migrations
        );
        println!(
            "  proc:  {:>9} instructions, {:>6} branch mispredicts",
            run.proc.instructions, run.proc.branch_mispredicts
        );
        println!();
    }
    Ok(())
}
