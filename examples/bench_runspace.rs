//! Baseline the parallel run-space executor against the sequential path on
//! the `design_comparison` workload (16 perturbed OLTP runs of one ROB-32
//! configuration), verify bit-identity, and write the wall-time record to
//! `BENCH_runspace.json`.
//!
//! ```text
//! cargo run --release --example bench_runspace
//! ```
//!
//! The JSON is an honest record of *this host*: on a single-core container
//! the parallel path cannot beat sequential (there is nothing to overlap
//! with), and the file says so via `host_parallelism`. The quantity under
//! test is the determinism contract — identical results at every thread
//! count — with speedup as a free side effect wherever cores exist. The
//! `thread_sweep` table makes that explicit: the same space at 1, 2, 4, and
//! 8 requested workers, each entry recording the thread count the executor
//! actually used and asserting bit-identity against the sequential
//! reference.

use std::sync::Arc;
use std::time::Instant;

use mtvar_core::checkpoint::CheckpointStore;
use mtvar_core::runspace::{run_space, Executor, RunPlan, RunSpace};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

const RUNS: usize = 16;
const TXNS: u64 = 50;
const WARMUP: u64 = 400;

/// Warmup-amortization scenario: a time-sampling style sweep that launches a
/// small run space from each of these cumulative warmup depths. Without a
/// checkpoint store every sweep warms its position from cycle zero (18,000
/// warmup transactions in total); with a store each position extends the
/// previous snapshot (4000 in total), so the store should win by well over
/// 2x on warmup-dominated work.
const AMORT_POSITIONS: [u64; 8] = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000];
const AMORT_RUNS: usize = 8;
const AMORT_TXNS: u64 = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::hpca2003()
        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(32)))
        .with_perturbation(4, 0);
    let plan = RunPlan::new(TXNS).with_runs(RUNS).with_warmup(WARMUP);
    let workload = || Benchmark::Oltp.workload(16, 42);

    // Sequential reference: the free function, uncached.
    let t0 = Instant::now();
    let reference = run_space(&cfg, workload, &plan)?;
    let sequential_s = t0.elapsed().as_secs_f64();

    // Explicit thread sweep: the same space at 1, 2, 4, and 8 requested
    // workers, cache disabled so the measurement is pure compute. Each entry
    // records the thread count the executor actually used (`threads()`, as
    // passed to the parallel sectioned decode) and is asserted bit-identical
    // against the sequential reference.
    let mut sweep_entries = Vec::new();
    let mut one_thread_s = f64::NAN;
    for requested in [1usize, 2, 4, 8] {
        let executor = Executor::with_threads(requested).without_cache();
        let used = executor.threads();
        let t = Instant::now();
        let swept = executor.run_space(&cfg, workload, &plan)?;
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            reference.results(),
            swept.results(),
            "{requested}-thread executor must be bit-identical to the \
             sequential reference"
        );
        if requested == 1 {
            one_thread_s = secs;
        }
        sweep_entries.push(format!(
            "    {{ \"threads_requested\": {requested}, \"threads_used\": {used}, \
             \"seconds\": {secs:.4}, \"speedup_vs_1_thread\": {:.3} }}",
            one_thread_s / secs
        ));
    }
    let thread_sweep = sweep_entries.join(",\n");

    // The host-default executor is the headline `parallel_seconds` number.
    let executor = Executor::new().without_cache();
    let threads = executor.threads();
    let t1 = Instant::now();
    let parallel = executor.run_space(&cfg, workload, &plan)?;
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(
        reference.results(),
        parallel.results(),
        "parallel executor must be bit-identical to the sequential reference"
    );

    // Cached re-invocation of the same space (cache enabled this time).
    let cached_exec = Executor::new();
    cached_exec.run_space(&cfg, workload, &plan)?;
    let t2 = Instant::now();
    let cached: RunSpace = cached_exec.run_space(&cfg, workload, &plan)?;
    let cached_s = t2.elapsed().as_secs_f64();
    assert_eq!(reference.results(), cached.results());

    // Strict invariant mode forces the (read-only) monitor onto every run;
    // a clean workload must still produce bit-identical results.
    let strict = Executor::new()
        .without_cache()
        .with_invariant_checks()
        .run_space(&cfg, workload, &plan)?;
    assert_eq!(
        reference.results(),
        strict.results(),
        "strict monitoring must not disturb a clean run space"
    );
    assert!(strict.is_clean());

    // Warmup amortization: the same position sweep with and without a
    // checkpoint store. Sequential, uncached executors on both sides, so the
    // only difference under measurement is warmup re-simulation vs snapshot
    // restore — and the statistics must be bit-identical either way, because
    // run seeds derive from the configuration, never from the store.
    let amort_workload = || Benchmark::Oltp.workload(16, 42);
    let sweep = |exec: &Executor| -> Result<Vec<RunSpace>, mtvar_core::CoreError> {
        AMORT_POSITIONS
            .iter()
            .map(|&pos| {
                let plan = RunPlan::new(AMORT_TXNS)
                    .with_runs(AMORT_RUNS)
                    .with_warmup(pos);
                exec.run_space(&cfg, amort_workload, &plan)
            })
            .collect()
    };
    let t3 = Instant::now();
    let no_store_spaces = sweep(&Executor::sequential().without_cache())?;
    let amort_no_store_s = t3.elapsed().as_secs_f64();

    let store = Arc::new(CheckpointStore::new());
    let stored_exec = Executor::sequential()
        .without_cache()
        .with_checkpoint_store(store.clone());
    let t4 = Instant::now();
    let store_spaces = sweep(&stored_exec)?;
    let amort_store_s = t4.elapsed().as_secs_f64();

    assert_eq!(
        no_store_spaces, store_spaces,
        "the checkpoint store must be invisible to statistics"
    );
    assert_eq!(store.len(), AMORT_POSITIONS.len());
    let amort_speedup = amort_no_store_s / amort_store_s;

    let speedup = sequential_s / parallel_s;
    let json = format!(
        "{{\n  \"workload\": \"design_comparison: OLTP 16 threads, ROB-32, {RUNS} runs x {TXNS} txns, warmup {WARMUP}\",\n  \"host_parallelism\": {threads},\n  \"sequential_seconds\": {sequential_s:.4},\n  \"parallel_seconds\": {parallel_s:.4},\n  \"cached_seconds\": {cached_s:.6},\n  \"speedup_parallel_vs_sequential\": {speedup:.3},\n  \"bit_identical\": true,\n  \"thread_sweep\": [\n{thread_sweep}\n  ],\n  \"warmup_amortization\": {{\n    \"workload\": \"OLTP 16 threads, ROB-32, {AMORT_RUNS} runs x {AMORT_TXNS} txns from each warmup position\",\n    \"positions\": [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000],\n    \"no_store_seconds\": {amort_no_store_s:.4},\n    \"store_seconds\": {amort_store_s:.4},\n    \"speedup_store_vs_no_store\": {amort_speedup:.3},\n    \"statistics_identical\": true\n  }}\n}}\n"
    );
    std::fs::write("BENCH_runspace.json", &json)?;
    println!("{json}");
    println!("wrote BENCH_runspace.json ({threads} worker thread(s) on this host)");
    Ok(())
}
