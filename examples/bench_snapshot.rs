//! Snapshot fork-restore benchmark: the cost of launching one perturbed run
//! from a warmed 16-CPU OLTP checkpoint, before (a full `Machine::restore`
//! per fork — the pre-sectioning executor path) versus after (decode one
//! template, `Machine::fork` per run — copy-on-write `Arc` sharing of the
//! line arrays). Written to `BENCH_snapshot.json`.
//!
//! ```text
//! cargo run --release --example bench_snapshot
//! ```
//!
//! This is the state-acquisition step of the time-sampling scenario: a study
//! launches many short measured windows from one warmup checkpoint, so the
//! per-window decode cost multiplies across the whole run space. The digest
//! fold pins the statistics: a forked machine must produce bit-identical
//! results to a freshly restored one, so the speedup is a like-for-like
//! decode-path win, not a semantics change.

use std::time::Instant;

use mtvar_core::golden::run_digest;
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::profile::ProfiledWorkload;
use mtvar_workloads::Benchmark;

/// Measurement samples per mode; the median is reported.
const SAMPLES: usize = 7;
/// Warmup transactions before the checkpoint is taken.
const WARMUP_TXNS: u64 = 300;
/// Forks launched from the one warmed checkpoint per sample.
const FORKS: usize = 32;
/// Measured transactions per fork in the digest-equality pass.
const FORK_TXNS: u64 = 20;

/// Minimum accepted speedup of fork-per-run over restore-per-run. The PR's
/// acceptance floor; the measured ratio is far above it because a fork is a
/// pointer-copy of the dominant line arrays.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn warmed_checkpoint() -> mtvar_sim::checkpoint::Checkpoint {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
    let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).expect("machine");
    m.run_transactions(WARMUP_TXNS).expect("warmup");
    m.snapshot()
}

/// Legacy path: every fork pays a full decode of the checkpoint.
fn restore_sample(ck: &mtvar_sim::checkpoint::Checkpoint) -> f64 {
    let t0 = Instant::now();
    for _ in 0..FORKS {
        let m: Machine<ProfiledWorkload> = Machine::restore(ck).expect("restore");
        std::hint::black_box(&m);
    }
    t0.elapsed().as_secs_f64()
}

/// Sectioned path: decode one template, fork it per run.
fn fork_sample(ck: &mtvar_sim::checkpoint::Checkpoint) -> f64 {
    let t0 = Instant::now();
    let template: Machine<ProfiledWorkload> = Machine::restore(ck).expect("restore");
    for _ in 0..FORKS {
        let m = template.fork();
        std::hint::black_box(&m);
    }
    t0.elapsed().as_secs_f64()
}

/// Decode-thread sweep axis for the parallel sectioned decode.
const DECODE_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Template decodes per timing sample in the thread sweep.
const DECODES_PER_SAMPLE: usize = 4;

/// Times `DECODES_PER_SAMPLE` template decodes at the given worker count.
fn decode_sample(ck: &mtvar_sim::checkpoint::Checkpoint, threads: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..DECODES_PER_SAMPLE {
        let m: Machine<ProfiledWorkload> =
            Machine::restore_with_threads(ck, threads).expect("restore");
        std::hint::black_box(&m);
    }
    t0.elapsed().as_secs_f64()
}

/// Runs `FORKS` perturbed windows acquired via `acquire` and folds their
/// statistics digests; both acquisition paths must fold to the same value.
fn digest_fold<F>(mut acquire: F) -> u64
where
    F: FnMut() -> Machine<ProfiledWorkload>,
{
    (0..FORKS).fold(0xcbf2_9ce4_8422_2325u64, |acc, i| {
        let mut m = acquire().with_perturbation_seed(i as u64);
        let result = m.run_transactions(FORK_TXNS).expect("forked run");
        acc.rotate_left(7) ^ run_digest(&result)
    })
}

fn main() {
    println!(
        "snapshot fork-restore: 16-CPU OLTP (hpca2003), checkpoint after \
         {WARMUP_TXNS} warmup txns, {FORKS} forks/sample"
    );
    let ck = warmed_checkpoint();
    println!(
        "  payload            : {} bytes, {} sections",
        ck.len(),
        ck.sections().len()
    );

    // Statistics pin first: a fork must be indistinguishable from a fresh
    // restore across a perturbed measured window.
    let restored_digest = digest_fold(|| Machine::restore(&ck).expect("restore"));
    let template: Machine<ProfiledWorkload> = Machine::restore(&ck).expect("restore");
    let forked_digest = digest_fold(|| template.fork());
    assert_eq!(
        restored_digest, forked_digest,
        "forked runs must be bit-identical to restored runs"
    );
    println!("  digest             : {restored_digest:#018x} (restore == fork)");

    let restore_wall = median((0..SAMPLES).map(|_| restore_sample(&ck)).collect());
    let fork_wall = median((0..SAMPLES).map(|_| fork_sample(&ck)).collect());
    let restore_us = restore_wall * 1e6 / FORKS as f64;
    let fork_us = fork_wall * 1e6 / FORKS as f64;
    let speedup = restore_wall / fork_wall;

    println!("  restore/fork       : {restore_us:.1} us (full decode per fork)");
    println!("  fork/fork          : {fork_us:.1} us (one decode + CoW forks)");
    println!("  speedup            : {speedup:.2}x");
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "fork path must be at least {REQUIRED_SPEEDUP}x faster than \
         restore-per-fork (measured {speedup:.2}x)"
    );

    // Template-decode latency across decode worker counts: the parallel
    // sectioned decode's headline. Bit-identity is asserted unconditionally
    // (every thread count must re-encode to the snapshot's fingerprint); the
    // speedup floor is only *enforced* where the host actually has cores to
    // decode with — a single-core container cannot overlap section decodes,
    // and the JSON records that honestly via `speedup_enforced`.
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let want_fp = ck.fingerprint();
    let mut decode_us = Vec::new();
    for &threads in &DECODE_THREADS {
        let m: Machine<ProfiledWorkload> =
            Machine::restore_with_threads(&ck, threads).expect("restore");
        assert_eq!(
            m.snapshot().fingerprint(),
            want_fp,
            "{threads}-thread decode changed the re-encoded payload"
        );
        drop(m);
        let wall = median((0..SAMPLES).map(|_| decode_sample(&ck, threads)).collect());
        let us = wall * 1e6 / DECODES_PER_SAMPLE as f64;
        println!("  decode @{threads} thread(s): {us:.1} us/template");
        decode_us.push((threads, us));
    }
    let us_at = |t: usize| decode_us.iter().find(|&&(n, _)| n == t).expect("swept").1;
    let decode_speedup_4 = us_at(1) / us_at(4);
    let speedup_enforced = host_parallelism >= 4;
    println!(
        "  decode speedup @4  : {decode_speedup_4:.2}x \
         ({host_parallelism} host core(s), floor {}enforced)",
        if speedup_enforced { "" } else { "not " }
    );
    if speedup_enforced {
        assert!(
            decode_speedup_4 >= REQUIRED_SPEEDUP,
            "4-thread template decode must be at least {REQUIRED_SPEEDUP}x \
             faster than 1-thread on a {host_parallelism}-core host \
             (measured {decode_speedup_4:.2}x)"
        );
    }
    let decode_rows = decode_us
        .iter()
        .map(|&(threads, us)| {
            format!(
                "      {{ \"decode_threads\": {threads}, \"microseconds_per_template\": \
                 {us:.1}, \"speedup_vs_1_thread\": {:.3} }}",
                us_at(1) / us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"workload\": \"16-CPU OLTP (hpca2003), checkpoint after {WARMUP_TXNS} warmup txns; {FORKS} forks per sample, median of {SAMPLES}\",\n  \"payload_bytes\": {},\n  \"sections\": {},\n  \"before\": {{\n    \"path\": \"full Machine::restore per fork\",\n    \"microseconds_per_fork\": {restore_us:.1}\n  }},\n  \"after\": {{\n    \"path\": \"decode one template, Machine::fork per run (Arc copy-on-write line arrays)\",\n    \"microseconds_per_fork\": {fork_us:.1}\n  }},\n  \"speedup\": {speedup:.2},\n  \"required_speedup\": {REQUIRED_SPEEDUP:.1},\n  \"statistics_identical\": true,\n  \"template_decode\": {{\n    \"path\": \"parallel sectioned decode: per-node sections across scoped workers, residency seeds merged sequentially\",\n    \"host_parallelism\": {host_parallelism},\n    \"threads\": [\n{decode_rows}\n    ],\n    \"speedup_at_4_threads\": {decode_speedup_4:.3},\n    \"required_speedup\": {REQUIRED_SPEEDUP:.1},\n    \"speedup_enforced\": {speedup_enforced},\n    \"bit_identical\": true\n  }}\n}}\n",
        ck.len(),
        ck.sections().len(),
    );
    std::fs::write("BENCH_snapshot.json", json).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");
}
