//! Full §5.1 workflow for a microarchitectural design comparison: how many
//! runs do I need, and when is it safe to conclude?
//!
//! Compares 32- vs 64-entry reorder buffers with the out-of-order model,
//! walks sample sizes upward, and reports the first size at which each
//! significance level is reached — the engineering question Table 5 answers.
//!
//! ```text
//! cargo run --release --example design_comparison
//! ```

use mtvar_core::compare::Comparison;
use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_stats::infer::sample_size_for_relative_error;
use mtvar_workloads::Benchmark;

const MAX_RUNS: usize = 16;
const TXNS: u64 = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new();
    let collect = |rob: u32| -> Result<Vec<f64>, mtvar_core::CoreError> {
        let cfg = MachineConfig::hpca2003()
            .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
            .with_perturbation(4, 0)
            .with_invariant_checks();
        let plan = RunPlan::new(TXNS)
            .with_runs(MAX_RUNS)
            .with_warmup(400)
            // Perturb from cycle zero (the paper-artifact protocol): at these
            // scaled-down run lengths, warmup divergence carries the
            // variability this study demonstrates. See EXPERIMENTS.md,
            // "Shared warmup vs legacy perturb-from-zero".
            .with_shared_warmup(false);
        let space = executor.run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan)?;
        // Conclusions are only as good as the runs beneath them: refuse to
        // compare spaces whose invariants fired.
        assert!(space.is_clean(), "ROB-{rob} runs violated invariants");
        Ok(space.runtimes())
    };

    println!(
        "collecting {MAX_RUNS} runs per ROB size on {} thread(s)...",
        executor.threads()
    );
    let rob32 = collect(32)?;
    let rob64 = collect(64)?;
    let cmp = Comparison::from_runs("ROB-32", &rob32, "ROB-64", &rob64)?;

    // Growing-sample view: how the evidence firms up.
    println!("\n  n    mean-32    mean-64    one-sided p   decision at 5%");
    for n in (4..=MAX_RUNS).step_by(2) {
        let c = Comparison::from_runs("ROB-32", &rob32[..n], "ROB-64", &rob64[..n])?;
        let p = c.wrong_conclusion_bound()?;
        let (a, b) = c.summaries();
        println!(
            "  {n:>2}   {:>8.1}   {:>8.1}   {p:>10.4}    {}",
            a.mean(),
            b.mean(),
            if p <= 0.05 {
                "conclude"
            } else {
                "keep running"
            }
        );
    }

    // The Table-5 question.
    println!("\n  runs needed per significance level (paper's Table 5 protocol):");
    for (alpha, n) in cmp.min_runs_for_significance(&[0.10, 0.05, 0.025, 0.01])? {
        match n {
            Some(n) => println!("    alpha {:>5.1}% -> {n} runs", alpha * 100.0),
            None => println!(
                "    alpha {:>5.1}% -> more than {MAX_RUNS} runs",
                alpha * 100.0
            ),
        }
    }

    // And the forward-looking design estimate from §5.1.1.
    let (s32, _) = cmp.summaries();
    let cov = s32.coefficient_of_variation()? / 100.0;
    println!(
        "\n  planning rule of thumb: with CoV {:.1}%, limiting relative error to 4% at 95% \
         confidence needs about {} runs",
        cov * 100.0,
        sample_size_for_relative_error(cov, 0.04, 0.95)?
    );
    Ok(())
}
