//! Benchmark the sampling estimators against full-run ground truth on the
//! 16-CPU OLTP workload and write the accuracy-vs-cost record to
//! `BENCH_sampling.json`.
//!
//! ```text
//! cargo run --release --example bench_sampling
//! ```
//!
//! Two experiments share one checkpoint substrate:
//!
//! 1. **Headline accuracy/cost**: a 40-position frame through the OLTP
//!    warmup timeline is censused for ground truth, then each estimator
//!    (SRS, stratified, ranked-set, live) estimates the frame mean from a
//!    fraction of the positions. The record asserts that every estimator's
//!    95% CI contains the full-run mean at ≤ 25% of the full run's
//!    simulated cycles.
//! 2. **Methodology evaluation**: the same frame on a second configuration
//!    (slower DRAM) gives a comparison experiment with a known true
//!    direction; `evaluate` scores each estimator's empirical CI coverage,
//!    wrong-conclusion ratio versus that truth, absolute error, and cost
//!    over several design-seed trials.

use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_core::sampling::{evaluate, Method, SamplingFrame, SamplingStudy};
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

/// Frame: 40 starting points, 25 warmup transactions apart (1,000-txn span).
const POSITIONS: u64 = 40;
const SPACING: u64 = 25;
/// Per measured position: 3 perturbed runs of 250 transactions.
const RUNS: usize = 3;
const TXNS: u64 = 250;
/// Design seed of the headline estimates and base of the trial seeds.
const SEED: u64 = 2003;
/// Evaluation trials per estimator per side.
const TRIALS: usize = 3;

const METHODS: [Method; 4] = [
    Method::Position {
        samples: 6,
        strata: 1,
    },
    Method::Position {
        samples: 6,
        strata: 3,
    },
    Method::RankedSet {
        set_size: 2,
        cycles: 2,
    },
    Method::Live {
        target_half_width: 0.03,
        max_samples: 6,
    },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let executor = Executor::new();
    let plan = RunPlan::new(TXNS).with_runs(RUNS);
    let frame = SamplingFrame::new(POSITIONS, SPACING);
    let make_study = |cfg: MachineConfig| {
        SamplingStudy::new(
            &executor,
            cfg.with_perturbation(4, 0),
            || Benchmark::Oltp.workload(16, 42),
            frame,
            &plan,
        )
    };
    let base = make_study(MachineConfig::hpca2003())?;
    let alt = make_study(MachineConfig::hpca2003().with_dram_latency_ns(150))?;

    println!(
        "censusing the {POSITIONS}-position OLTP frame for ground truth \
         ({} warmup + {} measured transactions)...",
        frame.span(),
        POSITIONS * RUNS as u64 * TXNS
    );
    let truth = base.ground_truth()?;
    println!(
        "  full-run mean {:.1} cycles/txn over {} positions, {:.3e} simulated cycles\n",
        truth.mean(),
        truth.values().len(),
        truth.simulated_cycles()
    );

    // Headline: each estimator vs the full run, on the base configuration.
    let mut rows = String::new();
    println!(
        "  {:<11} {:>9}  {:>23}  {:>6}  {:>7}  {:>6}",
        "estimator", "estimate", "95% CI", "n", "probes", "cost%"
    );
    for method in METHODS {
        let r = base.estimate(method, SEED)?;
        let e = &r.estimate;
        let cost_pct = 100.0 * e.cost().simulated / truth.simulated_cycles();
        let contains = e.ci().contains(truth.mean());
        println!(
            "  {:<11} {:>9.1}  [{:>9.1}, {:>9.1}]  {:>6}  {:>7}  {:>5.1}%",
            method.name(),
            e.point(),
            e.ci().lower(),
            e.ci().upper(),
            e.cost().measurements,
            e.cost().proxy_probes,
            cost_pct
        );
        assert!(
            contains,
            "{method}: 95% CI [{:.1}, {:.1}] must contain the full-run mean {:.1}",
            e.ci().lower(),
            e.ci().upper(),
            truth.mean()
        );
        assert!(
            cost_pct <= 25.0,
            "{method}: cost {cost_pct:.1}% exceeds 25% of the full run"
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"name\": \"{}\", \"point\": {:.4}, \"ci_lower\": {:.4}, \"ci_upper\": {:.4}, \"contains_truth\": {}, \"measurements\": {}, \"proxy_probes\": {}, \"simulated_cycles\": {:.0}, \"cost_percent_of_full_run\": {:.2} }}",
            method.name(),
            e.point(),
            e.ci().lower(),
            e.ci().upper(),
            contains,
            e.cost().measurements,
            e.cost().proxy_probes,
            e.cost().simulated,
            cost_pct
        ));
    }

    // Evaluation: base vs slower-DRAM alternative, TRIALS seeds per method.
    println!("\nscoring estimators on the base-vs-slow-DRAM comparison ({TRIALS} trials)...\n");
    let eval = evaluate(&base, &alt, &METHODS, TRIALS, SEED)?;
    println!("{}", eval.table());

    let mut score_rows = String::new();
    for s in &eval.scores {
        if !score_rows.is_empty() {
            score_rows.push_str(",\n");
        }
        score_rows.push_str(&format!(
            "      {{ \"name\": \"{}\", \"coverage_percent\": {:.1}, \"wcr_percent\": {:.1}, \"mean_abs_error_percent\": {:.3}, \"mean_cost_percent\": {:.2} }}",
            s.method.name(),
            s.coverage_percent,
            s.wcr_percent,
            s.mean_abs_error_percent,
            s.mean_cost_percent
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"OLTP, 16 CPUs, hpca2003 machine, perturbation 4ns\",\n  \"frame\": {{ \"positions\": {POSITIONS}, \"spacing_txns\": {SPACING}, \"runs_per_position\": {RUNS}, \"transactions_per_run\": {TXNS} }},\n  \"ground_truth\": {{ \"mean_cycles_per_txn\": {:.4}, \"simulated_cycles\": {:.0} }},\n  \"estimators\": [\n{rows}\n  ],\n  \"evaluation\": {{\n    \"comparison\": \"base vs dram 150ns\",\n    \"trials\": {TRIALS},\n    \"truth_base_mean\": {:.4},\n    \"truth_alt_mean\": {:.4},\n    \"scores\": [\n{score_rows}\n    ]\n  }}\n}}\n",
        truth.mean(),
        truth.simulated_cycles(),
        eval.truth_base.mean(),
        eval.truth_alt.mean(),
    );
    std::fs::write("BENCH_sampling.json", &json)?;
    println!("wrote BENCH_sampling.json");
    Ok(())
}
