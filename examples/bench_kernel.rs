//! Kernel-throughput benchmark: events/second of the discrete-event core on
//! the paper's 16-processor OLTP reference workload, plus the run-space
//! wall-clock on the PR-4 `design_comparison` workload, written to
//! `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release --example bench_kernel
//! ```
//!
//! The `before_*` constants are the same measurements taken on this host at
//! the commit immediately preceding the kernel overhaul (binary heap event
//! queue, broadcast snoops, per-decision allocations); the `after` numbers
//! are measured live. The digests pin the statistics: every optimization
//! must leave the simulated execution bit-identical, so the events/second
//! ratio is an honest like-for-like speedup, not a semantics change.

use std::time::Instant;

use mtvar_core::golden::run_digest;
use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_sim::proc::{OooConfig, ProcessorConfig};
use mtvar_workloads::Benchmark;

/// Measurement samples per scenario; the median is reported.
const SAMPLES: usize = 5;
/// Warmup transactions before the timed interval.
const WARMUP_TXNS: u64 = 100;
/// Timed transactions on the 16-CPU OLTP machine.
const MEASURE_TXNS: u64 = 2000;

/// Run-space scenario (PR 4's `design_comparison` shape): 16 perturbed OLTP
/// runs of one ROB-32 configuration.
const SPACE_RUNS: usize = 16;
const SPACE_TXNS: u64 = 50;
const SPACE_WARMUP: u64 = 400;

/// Baseline (pre-overhaul) measurements on this host; see module docs.
/// Zero means "not yet recorded" — the example then only prints the live
/// numbers so the baseline can be captured. The space baseline is the
/// faster of two baseline runs (0.1319 s and 0.1414 s), so the reported
/// run-space delta is the conservative one.
const BEFORE_EVENTS_PER_SEC: f64 = 2_617_590.0;
const BEFORE_NS_PER_EVENT: f64 = 382.0;
const BEFORE_SPACE_SECONDS: f64 = 0.1319;

/// Digest of the timed 16-CPU OLTP interval at baseline (statistics pin).
const EXPECTED_THROUGHPUT_DIGEST: u64 = 0x3169_0f97_be50_30cb;
/// Fold of per-run digests over the run-space scenario at baseline.
const EXPECTED_SPACE_DIGEST: u64 = 0x9d11_8919_29d9_39e3;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// One throughput sample: fresh 16-CPU OLTP machine, warmup, then a timed
/// measured interval. Returns (events in interval, wall seconds, digest).
fn throughput_sample() -> (u64, f64, u64) {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
    let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).expect("machine");
    m.run_transactions(WARMUP_TXNS).expect("warmup");
    let events0 = m.events_posted();
    let t0 = Instant::now();
    let result = m.run_transactions(MEASURE_TXNS).expect("measure");
    let wall = t0.elapsed().as_secs_f64();
    (m.events_posted() - events0, wall, run_digest(&result))
}

fn space_sample() -> (f64, u64) {
    let cfg = MachineConfig::hpca2003()
        .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(32)))
        .with_perturbation(4, 0);
    let plan = RunPlan::new(SPACE_TXNS)
        .with_runs(SPACE_RUNS)
        .with_warmup(SPACE_WARMUP);
    let exec = Executor::sequential().without_cache();
    let t0 = Instant::now();
    let space = exec
        .run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan)
        .expect("run space");
    let wall = t0.elapsed().as_secs_f64();
    let digest = space
        .results()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, r| {
            acc.rotate_left(7) ^ run_digest(r)
        });
    (wall, digest)
}

fn main() {
    println!("kernel throughput: 16-CPU OLTP, {MEASURE_TXNS} txns after {WARMUP_TXNS} warmup");

    let mut events = 0u64;
    let mut digest = 0u64;
    let walls: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let (ev, wall, d) = throughput_sample();
            if i == 0 {
                events = ev;
                digest = d;
            } else {
                assert_eq!(ev, events, "event count must be deterministic");
                assert_eq!(d, digest, "statistics must be deterministic");
            }
            wall
        })
        .collect();
    let wall = median(walls);
    let events_per_sec = events as f64 / wall;
    let ns_per_event = wall * 1e9 / events as f64;
    println!("  events in interval : {events}");
    println!("  median wall        : {wall:.4} s");
    println!("  events/sec         : {events_per_sec:.0}");
    println!("  ns/event           : {ns_per_event:.1}");
    println!("  digest             : {digest:#018x}");

    let mut space_digest = 0u64;
    let space_walls: Vec<f64> = (0..SAMPLES)
        .map(|i| {
            let (wall, d) = space_sample();
            if i == 0 {
                space_digest = d;
            } else {
                assert_eq!(
                    d, space_digest,
                    "run-space statistics must be deterministic"
                );
            }
            wall
        })
        .collect();
    let space_wall = median(space_walls);
    println!("run space: OLTP 16 CPUs, ROB-32, {SPACE_RUNS} runs x {SPACE_TXNS} txns, warmup {SPACE_WARMUP}");
    println!("  median wall        : {space_wall:.4} s");
    println!("  space digest       : {space_digest:#018x}");

    let statistics_identical = EXPECTED_THROUGHPUT_DIGEST != 0
        && digest == EXPECTED_THROUGHPUT_DIGEST
        && space_digest == EXPECTED_SPACE_DIGEST;
    if EXPECTED_THROUGHPUT_DIGEST != 0 {
        assert_eq!(
            digest, EXPECTED_THROUGHPUT_DIGEST,
            "optimizations must be digest-preserving"
        );
        assert_eq!(
            space_digest, EXPECTED_SPACE_DIGEST,
            "optimizations must be digest-preserving"
        );
    }

    if BEFORE_EVENTS_PER_SEC > 0.0 {
        let speedup = events_per_sec / BEFORE_EVENTS_PER_SEC;
        println!("  speedup vs baseline: {speedup:.3}x");
        let json = format!(
            "{{\n  \"workload\": \"16-CPU OLTP (hpca2003), {MEASURE_TXNS} measured txns after {WARMUP_TXNS} warmup; simple cores, perturbation (4 ns, seed 1)\",\n  \"events_in_interval\": {events},\n  \"before\": {{\n    \"events_per_sec\": {BEFORE_EVENTS_PER_SEC:.0},\n    \"ns_per_event\": {BEFORE_NS_PER_EVENT:.1}\n  }},\n  \"after\": {{\n    \"events_per_sec\": {events_per_sec:.0},\n    \"ns_per_event\": {ns_per_event:.1}\n  }},\n  \"speedup_events_per_sec\": {speedup:.3},\n  \"runspace_delta\": {{\n    \"workload\": \"design_comparison: OLTP 16 CPUs, ROB-32, {SPACE_RUNS} runs x {SPACE_TXNS} txns, warmup {SPACE_WARMUP} (sequential, uncached)\",\n    \"before_seconds\": {BEFORE_SPACE_SECONDS:.4},\n    \"after_seconds\": {space_wall:.4},\n    \"speedup\": {:.3}\n  }},\n  \"statistics_identical\": {statistics_identical}\n}}\n",
            BEFORE_SPACE_SECONDS / space_wall,
        );
        std::fs::write("BENCH_kernel.json", json).expect("write BENCH_kernel.json");
        println!("wrote BENCH_kernel.json");
    } else {
        println!("(baseline constants unset: record these numbers as before_* first)");
    }
}
