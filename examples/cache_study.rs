//! A cache-design study done *wrong* and then done *right*.
//!
//! Compares 2-way vs 4-way L2 associativity on OLTP, first the way most 2003
//! papers did (one simulation per configuration), then with the variability
//! methodology (multiple runs + hypothesis test). Shows how often the
//! single-run approach gets the direction wrong.
//!
//! ```text
//! cargo run --release --example cache_study
//! ```

use mtvar_core::compare::{Comparison, Verdict};
use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_core::wcr::wrong_conclusion_ratio;
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

const RUNS: usize = 12;
const TXNS: u64 = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One executor for the whole study: both configurations' run spaces fan
    // out over its thread pool, and its cache would satisfy any repeats.
    // Strict invariant mode makes the study self-validating — if any run
    // violated coherence/inclusion/conservation, run_space would return
    // CoreError::InvariantViolation instead of tainted numbers.
    let executor = Executor::new().with_invariant_checks();
    let runs_for = |ways: u32| -> Result<Vec<f64>, mtvar_core::CoreError> {
        let cfg = MachineConfig::hpca2003()
            .with_l2_associativity(ways)
            .with_perturbation(4, 0);
        let plan = RunPlan::new(TXNS)
            .with_runs(RUNS)
            .with_warmup(1000)
            // Perturb from cycle zero (the paper-artifact protocol): at these
            // scaled-down run lengths, warmup divergence carries the
            // variability this study demonstrates. See EXPERIMENTS.md,
            // "Shared warmup vs legacy perturb-from-zero".
            .with_shared_warmup(false);
        Ok(executor
            .run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan)?
            .runtimes())
    };

    println!(
        "collecting {RUNS} perturbed runs per configuration on {} thread(s)...",
        executor.threads()
    );
    let two_way = runs_for(2)?;
    let four_way = runs_for(4)?;

    // --- The wrong way: one simulation each. ---
    println!("\n-- single-simulation methodology --");
    println!(
        "  run #1 only: 2-way = {:.1}, 4-way = {:.1} -> \"{}\"",
        two_way[0],
        four_way[0],
        if two_way[0] < four_way[0] {
            "2-way is better!"
        } else {
            "4-way is better!"
        }
    );
    let wcr = wrong_conclusion_ratio(&two_way, &four_way)?;
    println!(
        "  across all {} single-run pairings, {:.1}% reach the wrong conclusion \
         (the paper measured 31% for this comparison)",
        wcr.total_pairs, wcr.wcr_percent
    );

    // --- The right way: the paper's §5.1 methodology. ---
    println!("\n-- variability-aware methodology --");
    let cmp = Comparison::from_runs("2-way", &two_way, "4-way", &four_way)?;
    let (ci2, ci4) = cmp.confidence_intervals(0.95)?;
    println!("  2-way 95% CI: {ci2}");
    println!("  4-way 95% CI: {ci4}");
    match cmp.verdict(0.05)? {
        Verdict::Superior {
            which,
            wrong_conclusion_bound,
        } => println!(
            "  verdict: {which:?} configuration is better; wrong-conclusion probability <= {wrong_conclusion_bound:.3}"
        ),
        Verdict::Inconclusive { p_value } => println!(
            "  verdict: INCONCLUSIVE at alpha = 0.05 (p = {p_value:.3}) — the honest answer \
             when configurations are this close; collect more runs before publishing"
        ),
    }
    Ok(())
}
