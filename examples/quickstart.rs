//! Quickstart: simulate the paper's 16-processor target running OLTP, expose
//! its space variability with perturbed runs, and summarize it the way the
//! methodology prescribes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Instant;

use mtvar_core::metrics::VariabilityReport;
use mtvar_core::runspace::{Executor, ProgressCounters, RunPlan};
use mtvar_sim::config::MachineConfig;
use mtvar_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The target machine of Alameldeen & Wood (HPCA 2003), §3.2.1:
    //    16 nodes, 128 KB 4-way L1s, 4 MB 4-way L2, MOSI snooping, 1 GHz.
    //    The §3.3 perturbation adds a uniform 0-4 ns to every L2 miss.
    //    Invariant checking keeps the coherence oracle watching every run;
    //    the executor reports anything it flags through the run space.
    let config = MachineConfig::hpca2003()
        .with_perturbation(4, 0)
        .with_invariant_checks();

    // 2. The OLTP workload: a TPC-C-like mix, 8 users per processor.
    let workload = || Benchmark::Oltp.workload(16, 42);

    // 3. Run the paper's protocol: N runs from identical initial conditions,
    //    each with its own derived perturbation seed, measured over 200
    //    transactions after warmup. The executor fans the runs across cores;
    //    results are bit-identical for any thread count.
    let plan = RunPlan::new(200).with_runs(10).with_warmup(500);
    let progress = Arc::new(ProgressCounters::new());
    let executor = Executor::new().with_progress(progress.clone());
    let t0 = Instant::now();
    let space = executor.run_space(&config, workload, &plan)?;
    println!(
        "{} runs on {} worker thread(s) in {:.2?} ({:.2?} of simulation)",
        progress.completed(),
        executor.threads(),
        t0.elapsed(),
        progress.total_wall()
    );
    assert!(
        space.is_clean(),
        "invariants fired: {:?}",
        space.violations()
    );
    println!(
        "invariants: clean ({} violation(s) observed across the sweep)",
        progress.violations()
    );

    // 4. Summarize with the paper's metrics.
    let report = VariabilityReport::from_runtimes(&space.runtimes())?;
    println!(
        "OLTP on the HPCA-2003 target, {} perturbed runs:",
        report.runs
    );
    println!(
        "  cycles/transaction: {:.1} ± {:.1}",
        report.mean, report.sd
    );
    println!(
        "  min / max:          {:.1} / {:.1}",
        report.min, report.max
    );
    println!("  coefficient of variation: {:.2}%", report.cov_percent);
    println!("  range of variability:     {:.2}%", report.range_percent);
    println!();
    println!(
        "Two single simulations of this same system could differ by {:.1}% — \
         the reason the paper tells architects to run several.",
        report.range_percent
    );
    Ok(())
}
