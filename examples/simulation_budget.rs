//! Planning a simulation campaign under a fixed budget, with
//! strategy-chosen starting points — the §5.2 "future work" features.
//!
//! Workflow: pilot-measure the workload's CoV decay, plan the budget split,
//! place checkpoints with stratified sampling, and run the campaign.
//!
//! ```text
//! cargo run --release --example simulation_budget
//! ```

use mtvar_core::budget::{plan_budget, CovModel};
use mtvar_core::metrics::VariabilityReport;
use mtvar_core::runspace::{Executor, RunPlan};
use mtvar_core::timesample::{checkpoint_positions, sweep_checkpoints_at_with, SamplingStrategy};
use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
    let executor = Executor::new();

    // 1. Pilot: a quick CoV-vs-length sweep (a miniature Table 4), measured
    //    and fitted in one call. The pilot's run spaces execute in parallel
    //    on the executor.
    println!("pilot sweep on {} thread(s)...", executor.threads());
    let model = CovModel::fit_by_pilot(
        &executor,
        &cfg,
        || Benchmark::Oltp.workload(16, 42),
        &[100, 200, 400],
        6,
        600,
    )?;
    for len in [100u64, 200, 400] {
        println!(
            "  {len:>4}-txn runs: fitted CoV {:.2}%",
            model.cov_percent_at(len)
        );
    }

    // 2. Plan: how should 6,000 transactions of budget be spent?
    let plan = plan_budget(&model, 6_000, 100, 0.95)?;
    println!(
        "\nplan for a 6,000-transaction budget: {} runs x {} transactions \
         (predicted CI halfwidth ±{:.2}%)",
        plan.runs, plan.transactions_per_run, plan.ci_halfwidth_percent
    );

    // 3. Time sampling: place 4 starting points by stratified sampling over
    //    the first 4,000 transactions of the workload's lifetime.
    let positions = checkpoint_positions(SamplingStrategy::Stratified { seed: 9 }, 4, 4_000)?;
    println!("stratified starting points (txns warmed): {positions:?}");

    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, 42))?;
    let run_plan = RunPlan::new(plan.transactions_per_run).with_runs(plan.runs.min(5));
    let study = sweep_checkpoints_at_with(&executor, &mut machine, &positions, &run_plan)?;
    assert!(
        study.is_clean(),
        "campaign runs violated invariants: {:?}",
        study.violation_counts()
    );

    for (ck, group) in study.checkpoints().iter().zip(study.groups()) {
        let rep = VariabilityReport::from_runtimes(group)?;
        println!(
            "  checkpoint @{ck:>5}: cycles/txn {:.1} ± {:.1}",
            rep.mean, rep.sd
        );
    }
    let anova = study.anova()?;
    println!(
        "ANOVA across starting points: F = {:.2}, p = {:.3e} -> {}",
        anova.f_statistic(),
        anova.p_value(),
        if study.requires_time_sampling(0.05)? {
            "report the grand mean over all starting points"
        } else {
            "a single starting point would have sufficed"
        }
    );
    Ok(())
}
