//! Steady-state allocation regression tests.
//!
//! The kernel overhaul's zero-alloc claim: once a machine is warmed — event
//! wheel buckets sized, workload op queues filled, scheduler scratch grown —
//! the hot loop (event dispatch, cache access, snoop filtering, scheduling,
//! invariant checking on clean runs) performs no heap allocation. A counting
//! `#[global_allocator]` measures a >= 10k-event window on the 16-CPU OLTP
//! reference machine; the budget tolerates only the rare amortized regrowth
//! of long-lived containers (a workload op queue crossing its previous
//! capacity, a cold wheel bucket's first use), not per-event or per-decision
//! churn, which would cost thousands of allocations in a window this size.
//!
//! The snapshot path carries the same discipline: encode must fit the
//! up-front capacity seed (no doubling regrowth of a multi-megabyte buffer),
//! and forking a decoded template must cost a small fraction of a full
//! restore — the copy-on-write fork is the point of the sectioned snapshot
//! work.
//!
//! These tests live in their own integration-test binary because a global
//! allocator is per-binary; they additionally serialize on a mutex because
//! the test harness runs them on concurrent threads and the counters are
//! process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Serializes the tests in this binary: the counters above are
/// process-global, and the harness runs `#[test]`s concurrently.
static SERIAL: Mutex<()> = Mutex::new(());

// SAFETY: defers entirely to `System`; the counters are relaxed atomics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Regrowth is exactly what this test hunts; count it like an alloc.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // The cache line arrays are calloc-backed (sparse copy-on-write
        // materialization); count those allocations the same as the rest so
        // the fork-vs-restore budget below measures them faithfully.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn counters() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

fn warmed_reference_machine() -> Machine<mtvar_workloads::profile::ProfiledWorkload> {
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).expect("machine");
    machine.enable_invariant_checks();
    machine.run_transactions(300).expect("warmup");
    machine
}

#[test]
fn warmed_machine_runs_ten_thousand_events_without_allocating() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The bench's reference machine, with the invariant monitor on so the
    // coherence-check path is included in the zero-alloc claim.
    let mut machine = warmed_reference_machine();

    let events_before = machine.events_posted();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    machine.run_transactions(60).expect("measured window");
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let events = machine.events_posted() - events_before;

    assert!(
        events >= 10_000,
        "window too small to be meaningful: {events} events"
    );
    assert!(
        allocs <= 64,
        "steady state allocated {allocs} times over {events} events; \
         the hot path has regressed to per-event allocation"
    );
}

#[test]
fn snapshot_encode_fits_its_capacity_seed() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let machine = warmed_reference_machine();

    // The capacity seed (the sum of every component's `snap_size_hint`)
    // must cover the whole payload — and therefore every section, since
    // sections are ranges over the one buffer. If this inequality breaks,
    // encode regrows the buffer mid-snapshot and the allocation budget
    // below breaks with it.
    let seed = machine.snapshot_size_hint();
    let (allocs_before, _) = counters();
    let ck = machine.snapshot();
    let (allocs_after, _) = counters();
    assert!(
        ck.len() <= seed,
        "payload ({} bytes) outgrew the capacity seed ({seed} bytes): \
         encode is regrowing mid-snapshot",
        ck.len()
    );
    let covered: usize = ck.sections().iter().map(|s| s.len).sum();
    assert_eq!(covered, ck.len(), "sections must tile the payload");

    // Encoding allocates the payload buffer, the section table, and the
    // sorted event list — a fixed handful, independent of machine size.
    // Doubling growth of a warmed 16-CPU payload from empty would cost ~10
    // reallocs on its own and fail this budget.
    let allocs = allocs_after - allocs_before;
    assert!(
        allocs <= 16,
        "snapshot encode allocated {allocs} times; the capacity seed has \
         stopped covering the payload"
    );
}

#[test]
fn forking_a_template_is_far_cheaper_than_restoring() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let machine = warmed_reference_machine();
    let ck = machine.snapshot();

    // Start from a cold decode arena: this test compares a *full* restore
    // against a fork, and a pooled line buffer would make the restore look
    // nearly free (which is the point of the arena, and exactly what the
    // budget test below asserts — but it would invalidate this ratio).
    mtvar_sim::mem::arena::clear();

    let (restore_allocs_0, restore_bytes_0) = counters();
    let template: Machine<mtvar_workloads::profile::ProfiledWorkload> =
        Machine::restore(&ck).expect("restore");
    let (restore_allocs_1, restore_bytes_1) = counters();
    let restore_allocs = restore_allocs_1 - restore_allocs_0;
    let restore_bytes = restore_bytes_1 - restore_bytes_0;

    let (fork_allocs_0, fork_bytes_0) = counters();
    let fork = template.fork();
    let (fork_allocs_1, fork_bytes_1) = counters();
    let fork_allocs = fork_allocs_1 - fork_allocs_0;
    let fork_bytes = fork_bytes_1 - fork_bytes_0;

    // The line arrays — the dominant decoded state — are Arc-shared until
    // first write, so a fork allocates only the small per-run containers
    // (event wheel, scheduler state, workload queues), a fraction of what a
    // full decode pays.
    assert!(
        fork_bytes <= restore_bytes / 4,
        "fork allocated {fork_bytes} bytes vs {restore_bytes} for a full \
         restore; copy-on-write sharing has regressed \
         ({fork_allocs} vs {restore_allocs} allocations)"
    );

    // The fork must still be a working machine: run a perturbed window
    // (the first write to each array materializes its private copy via the
    // decoder's resident-line seed).
    let mut fork = fork.with_perturbation_seed(7);
    fork.run_transactions(20).expect("forked run");
    drop(template);
}

/// The decode arena's claim for steady-state sweep launches: once the
/// thread's pools hold one round's worth of retired buffers, a template
/// decode plus 32 forks never re-allocates the multi-megabyte recycled
/// buffers — the dense line arrays (~25 MB across the reference machine's
/// 48 caches) on the decode side, and the snoop filter's 4 MB count +
/// 0.5 MB presence arrays on the fork side — and the arena's hit counter
/// proves the pooled buffers were actually reused rather than the working
/// set merely shrinking. What remains inside the budgets is the honest
/// per-round container churn: the decoded event list, scheduler and
/// workload state, and each fork's private wheel/core/queue clones.
#[test]
fn arena_warm_template_decode_and_forks_stay_in_budget() {
    use mtvar_sim::mem::arena;

    const FORKS: usize = 32;
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    arena::clear();
    let machine = warmed_reference_machine();
    let ck = machine.snapshot();
    // Retire the warmed machine's line arrays into this thread's arena.
    drop(machine);

    // Warmup round: one decode + fork batch, fully dropped, grows every
    // pooled buffer (line arrays, resident seeds, filter arrays) to
    // steady-state size.
    {
        let template: Machine<mtvar_workloads::profile::ProfiledWorkload> =
            Machine::restore(&ck).expect("warmup decode");
        let forks: Vec<_> = (0..FORKS).map(|_| template.fork()).collect();
        drop(forks);
        drop(template);
    }

    let stats_before = arena::stats();
    let (allocs_0, bytes_0) = counters();
    let template: Machine<mtvar_workloads::profile::ProfiledWorkload> =
        Machine::restore(&ck).expect("steady-state decode");
    let (decode_allocs_1, decode_bytes_1) = counters();
    let forks: Vec<_> = (0..FORKS).map(|_| template.fork()).collect();
    let (allocs_1, bytes_1) = counters();
    let stats_after = arena::stats();
    let decode_allocs = decode_allocs_1 - allocs_0;
    let decode_bytes = decode_bytes_1 - bytes_0;
    let fork_allocs = allocs_1 - decode_allocs_1;
    let fork_bytes = bytes_1 - decode_bytes_1;

    assert!(
        stats_after.hits > stats_before.hits,
        "the round did not reuse a single pooled buffer \
         ({stats_before:?} -> {stats_after:?}); the arena has regressed"
    );
    // A warm decode allocates ~1.5 MB of container state (measured ~405
    // allocations). The budget's teeth: re-allocating even one retired L2
    // line array (1.5 MB dense) or the filter's 4 MB count array blows
    // straight through it.
    assert!(
        decode_allocs <= 800 && decode_bytes <= 2_500_000,
        "warm template decode allocated {decode_allocs} times / \
         {decode_bytes} bytes; the arena stopped recycling decode buffers"
    );
    // A warm fork allocates ~600 KB of per-run containers (~290
    // allocations). If the snoop-filter arrays stop recycling, each fork
    // pays 4.5 MB again and the batch lands near 150 MB — 4x over budget.
    assert!(
        fork_allocs <= 12_000 && (fork_bytes as usize) <= 40_000_000,
        "{FORKS} warm forks allocated {fork_allocs} times / {fork_bytes} \
         bytes; the arena stopped recycling the filter arrays"
    );
    drop(forks);
    drop(template);
}
