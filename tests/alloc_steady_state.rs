//! Steady-state allocation regression test.
//!
//! The kernel overhaul's zero-alloc claim: once a machine is warmed — event
//! wheel buckets sized, workload op queues filled, scheduler scratch grown —
//! the hot loop (event dispatch, cache access, snoop filtering, scheduling,
//! invariant checking on clean runs) performs no heap allocation. A counting
//! `#[global_allocator]` measures a >= 10k-event window on the 16-CPU OLTP
//! reference machine; the budget tolerates only the rare amortized regrowth
//! of long-lived containers (a workload op queue crossing its previous
//! capacity, a cold wheel bucket's first use), not per-event or per-decision
//! churn, which would cost thousands of allocations in a window this size.
//!
//! This test lives in its own integration-test binary because a global
//! allocator is per-binary and concurrent tests would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mtvar_sim::config::MachineConfig;
use mtvar_sim::machine::Machine;
use mtvar_workloads::Benchmark;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Regrowth is exactly what this test hunts; count it like an alloc.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warmed_machine_runs_ten_thousand_events_without_allocating() {
    // The bench's reference machine, with the invariant monitor on so the
    // coherence-check path is included in the zero-alloc claim.
    let cfg = MachineConfig::hpca2003().with_perturbation(4, 1);
    let mut machine = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).expect("machine");
    machine.enable_invariant_checks();

    // Warm until every long-lived container has seen its working-set size.
    machine.run_transactions(300).expect("warmup");

    let events_before = machine.events_posted();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    machine.run_transactions(60).expect("measured window");
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let events = machine.events_posted() - events_before;

    assert!(
        events >= 10_000,
        "window too small to be meaningful: {events} events"
    );
    assert!(
        allocs <= 64,
        "steady state allocated {allocs} times over {events} events; \
         the hot path has regressed to per-event allocation"
    );
}
