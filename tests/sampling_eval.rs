//! Fast sampling-estimator gate: a small-n run of the evaluation harness on
//! a scaled-down OLTP frame, asserting each estimator lands within
//! tolerance of the full-run ground truth at a fraction of its cost. The
//! full-size record lives in `BENCH_sampling.json` (see
//! `examples/bench_sampling.rs`); this is the cheap always-on version
//! `scripts/verify.sh` runs.

use mtvar::core::runspace::{Executor, RunPlan};
use mtvar::core::sampling::{evaluate, Method, SamplingFrame, SamplingStudy};
use mtvar::sim::config::MachineConfig;
use mtvar::workloads::profile::ProfiledWorkload;
use mtvar::workloads::Benchmark;

const METHODS: [Method; 3] = [
    Method::Position {
        samples: 4,
        strata: 2,
    },
    Method::RankedSet {
        set_size: 2,
        cycles: 2,
    },
    Method::Live {
        target_half_width: 0.05,
        max_samples: 6,
    },
];

fn study(cfg: MachineConfig) -> SamplingStudy<ProfiledWorkload, impl Fn() -> ProfiledWorkload> {
    SamplingStudy::new(
        &Executor::sequential(),
        cfg.with_perturbation(4, 0),
        || Benchmark::Oltp.workload(4, 7),
        SamplingFrame::new(10, 20),
        &RunPlan::new(60).with_runs(2),
    )
    .expect("valid study")
}

#[test]
fn estimators_land_within_tolerance_of_ground_truth() {
    let s = study(MachineConfig::hpca2003().with_cpus(4));
    let truth = s.ground_truth().expect("census");
    assert_eq!(truth.values().len(), 10);
    for method in METHODS {
        let r = s.estimate(method, 2003).expect("estimate");
        let rel_err = (r.estimate.point() - truth.mean()).abs() / truth.mean();
        assert!(
            rel_err < 0.10,
            "{method}: point {:.1} is {:.1}% from the full-run mean {:.1}",
            r.estimate.point(),
            100.0 * rel_err,
            truth.mean()
        );
        assert!(
            r.estimate.cost().simulated < 0.75 * truth.simulated_cycles(),
            "{method}: sampling must cost well under the census"
        );
    }
}

#[test]
fn evaluation_harness_scores_and_reproduces() {
    let base = study(MachineConfig::hpca2003().with_cpus(4));
    let alt = study(
        MachineConfig::hpca2003()
            .with_cpus(4)
            .with_dram_latency_ns(160),
    );
    let eval = evaluate(&base, &alt, &METHODS, 2, 11).expect("evaluation");
    assert_eq!(eval.scores.len(), METHODS.len());
    assert!(
        eval.truth_base.mean() < eval.truth_alt.mean(),
        "slower DRAM must raise cycles/transaction"
    );
    for score in &eval.scores {
        assert!((0.0..=100.0).contains(&score.coverage_percent));
        assert!((0.0..=100.0).contains(&score.wcr_percent));
        assert!(
            score.wcr_percent < 50.0,
            "{}: estimator comparisons must beat a coin flip ({}%)",
            score.method,
            score.wcr_percent
        );
        assert!(score.mean_cost_percent < 100.0);
    }
    // The harness is fully seeded: the same call reproduces bit-identically.
    let again = evaluate(&base, &alt, &METHODS, 2, 11).expect("evaluation");
    assert_eq!(eval, again);
}
