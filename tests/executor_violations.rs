//! End-to-end tests of the executor's invariant-violations channel: a
//! doc-hidden fault hook plants an illegal coherence state mid-run, and the
//! suite asserts the violation reaches [`RunProgress::run_violations`]
//! identically on 1 and N threads, replays on cache hits, and fails strict
//! executors with [`CoreError::InvariantViolation`] — never silently
//! dropped.
//!
//! `scripts/verify.sh` runs this suite with the `invariant-monitor` cargo
//! feature both off and on; the expectations that depend on whether
//! unmonitored runs exist branch on `cfg!(feature = "invariant-monitor")`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use mtvar::core::runspace::{Executor, ProgressCounters, RunPlan, RunProgress, Violation};
use mtvar::core::CoreError;
use mtvar::sim::config::{FaultSpec, MachineConfig};
use mtvar::sim::machine::Machine;
use mtvar::sim::mem::CoherenceState;
use mtvar::sim::workload::SharingWorkload;

/// Records every `run_violations` callback, keyed by run index — the
/// bit-identical-across-thread-counts comparisons are over this map.
#[derive(Debug, Default)]
struct ViolationMap {
    seen: Mutex<BTreeMap<usize, Vec<Violation>>>,
}

impl ViolationMap {
    fn snapshot(&self) -> BTreeMap<usize, Vec<Violation>> {
        self.seen.lock().unwrap().clone()
    }
}

impl RunProgress for ViolationMap {
    fn run_violations(&self, run_index: usize, violations: &[Violation]) {
        let prior = self
            .seen
            .lock()
            .unwrap()
            .insert(run_index, violations.to_vec());
        assert!(
            prior.is_none(),
            "run {run_index} reported violations twice in one sweep"
        );
    }
}

fn fault() -> FaultSpec {
    // Exclusive is illegal under the default MOSI protocol, so the monitor
    // flags the planted state unconditionally.
    FaultSpec::coherence(12, 1, 0xFA11, CoherenceState::Exclusive)
}

/// Monitored configuration with the fault armed: every run of a space
/// commits past transaction 12 and records at least one violation.
fn faulted_config() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 0)
        .with_invariant_checks()
        .with_fault(fault())
}

fn clean_config() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 0)
        .with_invariant_checks()
}

fn workload() -> SharingWorkload {
    SharingWorkload::new(8, 7, 40, 4096, 10)
}

#[test]
fn observing_mode_reports_identically_across_thread_counts() {
    let plan = RunPlan::new(30).with_runs(4);
    let reference: Option<BTreeMap<usize, Vec<Violation>>> = None;
    let mut reference = reference;
    for threads in [1, 2, 4] {
        let map = Arc::new(ViolationMap::default());
        let space = Executor::with_threads(threads)
            .without_cache()
            .with_progress(map.clone())
            .run_space(&faulted_config(), workload, &plan)
            .unwrap();
        let snap = map.snapshot();
        assert_eq!(snap.len(), 4, "every run must report on {threads} threads");
        assert!(!space.is_clean());
        assert_eq!(space.violations().len(), 4);
        // The space's own records agree with what the observer saw.
        for rv in space.violations() {
            assert_eq!(snap.get(&rv.run), Some(&rv.violations));
            assert!(rv.total >= rv.violations.len() as u64);
        }
        match &reference {
            None => reference = Some(snap),
            Some(expected) => assert_eq!(
                expected, &snap,
                "violation reports differ on {threads} threads"
            ),
        }
    }
}

#[test]
fn cache_hits_replay_the_same_violations() {
    let plan = RunPlan::new(30).with_runs(3);
    let map = Arc::new(ViolationMap::default());
    let counters = Arc::new(ProgressCounters::new());
    let exec = Executor::with_threads(2).with_progress(map.clone());
    let first = exec.run_space(&faulted_config(), workload, &plan).unwrap();
    let simulated = map.snapshot();
    assert_eq!(simulated.len(), 3);

    // Same cache, fresh observer: the second sweep is all cache hits and
    // must replay byte-identical violation reports.
    let replay = Arc::new(ViolationMap::default());
    let exec = exec.with_progress(replay.clone());
    let second = exec.run_space(&faulted_config(), workload, &plan).unwrap();
    assert_eq!(simulated, replay.snapshot(), "cache hits must replay");
    assert_eq!(first, second);

    // And ProgressCounters sees cached runs, not re-simulations.
    let exec = exec.with_progress(counters.clone());
    let _ = exec.run_space(&faulted_config(), workload, &plan).unwrap();
    assert_eq!(counters.cached(), 3);
    assert_eq!(counters.completed(), 0);
    assert_eq!(counters.violating_runs(), 3);
}

#[test]
fn strict_mode_turns_violations_into_typed_errors() {
    let plan = RunPlan::new(30).with_runs(4);
    for threads in [1, 4] {
        let err = Executor::with_threads(threads)
            .with_invariant_checks()
            .run_space(&faulted_config(), workload, &plan)
            .unwrap_err();
        match err {
            CoreError::InvariantViolation { run, report } => {
                assert_eq!(run, 0, "lowest violating run wins on {threads} threads");
                assert!(!report.is_empty());
            }
            other => panic!("expected InvariantViolation, got {other}"),
        }
    }
}

#[test]
fn strict_mode_monitors_even_unmonitored_configs() {
    // No with_invariant_checks on the config: observing mode only catches
    // the fault when the invariant-monitor feature forces a monitor, but
    // strict mode must always catch it.
    let cfg = MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 0)
        .with_fault(fault());
    let plan = RunPlan::new(30).with_runs(2);

    let err = Executor::with_threads(2)
        .with_invariant_checks()
        .run_space(&cfg, workload, &plan)
        .unwrap_err();
    assert!(matches!(err, CoreError::InvariantViolation { run: 0, .. }));

    let space = Executor::with_threads(2)
        .without_cache()
        .run_space(&cfg, workload, &plan)
        .unwrap();
    if cfg!(feature = "invariant-monitor") {
        assert_eq!(space.violations().len(), 2, "feature forces monitoring");
    } else {
        assert!(space.is_clean(), "unmonitored sweeps are vacuously clean");
    }
}

#[test]
fn strict_mode_distrusts_unmonitored_cache_entries() {
    let counters = Arc::new(ProgressCounters::new());
    let observing = Executor::with_threads(2).with_progress(counters.clone());
    let plan = RunPlan::new(25).with_runs(3);
    let cfg = MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 0);
    let a = observing.run_space(&cfg, workload, &plan).unwrap();
    assert_eq!(counters.completed(), 3);

    let strict = observing.clone().with_invariant_checks();
    let b = strict.run_space(&cfg, workload, &plan).unwrap();
    assert_eq!(a.results(), b.results(), "strict must not change results");
    if cfg!(feature = "invariant-monitor") {
        assert_eq!(counters.completed(), 3, "monitored entries are trusted");
        assert_eq!(counters.cached(), 3);
    } else {
        assert_eq!(counters.completed(), 6, "unmonitored entries re-simulate");
        assert_eq!(counters.cached(), 0);
    }
}

#[test]
fn clean_sweeps_are_identical_with_and_without_strictness() {
    let plan = RunPlan::new(30).with_runs(4).with_warmup(10);
    let observing = Executor::with_threads(2)
        .run_space(&clean_config(), workload, &plan)
        .unwrap();
    let strict = Executor::with_threads(2)
        .with_invariant_checks()
        .run_space(&clean_config(), workload, &plan)
        .unwrap();
    assert_eq!(observing.results(), strict.results());
    assert!(observing.is_clean());
    assert!(strict.is_clean());
    assert_eq!(strict.total_violations(), 0);
}

#[test]
fn checkpoint_spaces_carry_the_channel_too() {
    let mut m = Machine::new(faulted_config(), workload()).unwrap();
    // Stop before the fault's trigger commit so it fires inside each run.
    m.run_transactions(5).unwrap();
    assert!(m.invariant_violations().is_empty());
    let plan = RunPlan::new(30).with_runs(3);

    let mut reference: Option<BTreeMap<usize, Vec<Violation>>> = None;
    for threads in [1, 4] {
        let map = Arc::new(ViolationMap::default());
        let space = Executor::with_threads(threads)
            .without_cache()
            .with_progress(map.clone())
            .run_space_from_checkpoint(&m, &plan)
            .unwrap();
        assert_eq!(space.violations().len(), 3);
        let snap = map.snapshot();
        match &reference {
            None => reference = Some(snap),
            Some(expected) => assert_eq!(expected, &snap),
        }
    }

    let err = Executor::with_threads(2)
        .with_invariant_checks()
        .run_space_from_checkpoint(&m, &plan)
        .unwrap_err();
    assert!(matches!(err, CoreError::InvariantViolation { run: 0, .. }));
}
