//! Scaled-down smoke versions of the paper's experiments, checking that the
//! harness mechanics hold (directions, logs, sweeps) without the full 20-run
//! budgets of `cargo bench`.

use mtvar::core::runspace::{Executor, RunPlan};
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::sim::proc::{OooConfig, ProcessorConfig};
use mtvar::sim::sched::SchedEventKind;
use mtvar::workloads::Benchmark;

#[test]
fn fig1_smoke_schedule_logs_diverge_between_associativities() {
    let dispatches = |ways: u32| {
        let cfg = MachineConfig::hpca2003()
            .with_l2_associativity(ways)
            .with_sched_log();
        let mut m = Machine::new(cfg, Benchmark::Oltp.workload(16, 42)).expect("machine");
        let run = m.run_transactions(600).expect("run");
        run.sched_events
            .iter()
            .filter(|e| e.kind == SchedEventKind::Dispatch)
            .map(|e| (e.cpu.0, e.thread.0))
            .collect::<Vec<_>>()
    };
    let a = dispatches(2);
    let b = dispatches(4);
    assert!(!a.is_empty() && !b.is_empty());
    assert_ne!(a, b, "different cache configs must eventually diverge");
    // And they must agree on a non-empty prefix (same initial conditions).
    assert_eq!(a[0], b[0], "first dispatch must match");
}

#[test]
fn fig4_smoke_dram_sweep_is_not_monotone() {
    let mut results = Vec::new();
    for latency in [80u64, 82, 84, 86, 88, 90] {
        let cfg = MachineConfig::hpca2003()
            .with_cpus(8)
            .with_dram_latency_ns(latency);
        let mut m = Machine::new(cfg, Benchmark::Oltp.workload(8, 42)).expect("machine");
        m.run_transactions(150).expect("warmup");
        results.push(
            m.run_transactions(150)
                .expect("run")
                .cycles_per_transaction(),
        );
    }
    // The paper's central observation: tiny latency changes do NOT map to a
    // clean monotone curve.
    let monotone = results.windows(2).all(|w| w[1] >= w[0]);
    assert!(
        !monotone,
        "a perfectly monotone response to 2 ns steps would contradict the paper: {results:?}"
    );
}

#[test]
fn experiment2_smoke_bigger_rob_wins_on_average() {
    let executor = Executor::new();
    let mean_for = |rob: u32| {
        let cfg = MachineConfig::hpca2003()
            .with_processor(ProcessorConfig::OutOfOrder(OooConfig::with_rob_size(rob)))
            .with_perturbation(4, 0);
        let plan = RunPlan::new(50).with_runs(6).with_warmup(300);
        let rt = executor
            .run_space(&cfg, || Benchmark::Oltp.workload(16, 42), &plan)
            .expect("space")
            .runtimes();
        rt.iter().sum::<f64>() / rt.len() as f64
    };
    let rob16 = mean_for(16);
    let rob64 = mean_for(64);
    assert!(
        rob64 < rob16,
        "64-entry ROB ({rob64:.1}) must beat 16-entry ({rob16:.1}) on average"
    );
}

#[test]
fn table3_smoke_commercial_workloads_more_variable_than_scientific() {
    let executor = Executor::new();
    let cov_for = |b: Benchmark, txns: u64, warmup: u64| {
        let cfg = MachineConfig::hpca2003().with_perturbation(4, 0);
        let plan = RunPlan::new(txns).with_runs(8).with_warmup(warmup);
        let rt = executor
            .run_space(&cfg, || b.workload(16, 42), &plan)
            .expect("space")
            .runtimes();
        let s = mtvar::stats::describe::Summary::from_slice(&rt).expect("summary");
        s.coefficient_of_variation().expect("cov")
    };
    // Slashcode's variability develops once the lock/buffer state is warm.
    let barnes = cov_for(Benchmark::Barnes, 16, 0);
    let slashcode = cov_for(Benchmark::Slashcode, 30, 200);
    assert!(
        slashcode > barnes,
        "slashcode ({slashcode:.3}%) must be more variable than barnes ({barnes:.3}%)"
    );
}

#[test]
fn noise_machine_smoke_runs_vary_without_perturbation() {
    let elapsed = |noise_seed: u64| {
        let cfg = MachineConfig::e5000_like(noise_seed).with_cpus(4);
        let mut m = Machine::new(cfg, Benchmark::Oltp.workload(4, 42)).expect("machine");
        m.run_transactions(200).expect("run").elapsed()
    };
    assert_eq!(elapsed(3), elapsed(3), "same environment must replay");
    assert_ne!(
        elapsed(3),
        elapsed(4),
        "different environmental noise must change the run"
    );
}
