//! End-to-end tests of the paper's methodology across crates: run spaces,
//! variability metrics, WCR, comparisons and time sampling driving the real
//! simulator.

use mtvar::core::compare::{Comparison, Verdict};
use mtvar::core::metrics::{windowed_series, VariabilityReport};
use mtvar::core::runspace::{run_space, run_space_from_checkpoint, Executor, RunPlan};
use mtvar::core::timesample::sweep_checkpoints_with;
use mtvar::core::wcr::wcr_from_spaces;
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::workloads::Benchmark;

fn cfg() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(4)
        .with_perturbation(4, 0)
}

#[test]
fn run_space_yields_analyzable_variability() {
    let plan = RunPlan::new(100).with_runs(6).with_warmup(100);
    let space = run_space(&cfg(), || Benchmark::Oltp.workload(4, 42), &plan).expect("space");
    let report = VariabilityReport::from_runtimes(&space.runtimes()).expect("report");
    assert_eq!(report.runs, 6);
    assert!(report.mean > 0.0);
    assert!(report.cov_percent >= 0.0);
    assert!(report.range_percent >= 0.0);
    assert!(report.min <= report.mean && report.mean <= report.max);
}

#[test]
fn wcr_detects_overlap_between_close_configs() {
    // 2-way vs 4-way L2 on a small machine: close configs, overlapping
    // ranges, WCR strictly between 0 and 100. Both spaces execute on one
    // parallel executor and feed WCR directly.
    let executor = Executor::new();
    let collect = |ways| {
        let c = cfg().with_l2_associativity(ways);
        let plan = RunPlan::new(80).with_runs(8).with_warmup(200);
        executor
            .run_space(&c, || Benchmark::Oltp.workload(4, 42), &plan)
            .expect("space")
    };
    let a = collect(2);
    let b = collect(4);
    let w = wcr_from_spaces(&a, &b).expect("wcr");
    assert!(w.total_pairs == 64);
    assert!((0.0..=100.0).contains(&w.wcr_percent));
}

#[test]
fn comparison_workflow_runs_end_to_end() {
    let executor = Executor::new();
    let collect = |seed_base: u64| {
        let mut c = cfg();
        c.perturbation_seed = seed_base;
        let plan = RunPlan::new(60).with_runs(5).with_base_seed(seed_base);
        executor
            .run_space(&c, || Benchmark::Apache.workload(4, 9), &plan)
            .expect("space")
    };
    let a = collect(0);
    let b = collect(1000);
    let cmp = Comparison::from_spaces("a", &a, "b", &b).expect("comparison");
    let (ci_a, ci_b) = cmp.confidence_intervals(0.95).expect("cis");
    assert!(ci_a.width() > 0.0 && ci_b.width() > 0.0);
    // Same configuration sampled twice: the verdict must not be a confident
    // separation at a tight level... but tiny samples can fluke; just check
    // the machinery produces a coherent answer.
    match cmp.verdict(0.001).expect("verdict") {
        Verdict::Superior {
            wrong_conclusion_bound,
            ..
        } => assert!(wrong_conclusion_bound <= 0.001),
        Verdict::Inconclusive { p_value } => assert!(p_value > 0.001),
    }
}

#[test]
fn checkpoint_run_space_and_windows() {
    let mut m = Machine::new(cfg(), Benchmark::Oltp.workload(4, 42)).expect("machine");
    m.run_transactions(50).expect("warmup");
    let plan = RunPlan::new(100).with_runs(4);
    let space = run_space_from_checkpoint(&m, &plan).expect("space");
    assert_eq!(space.len(), 4);
    // Windowed series over one of the runs.
    let series = windowed_series(&space.results()[0], 20).expect("series");
    assert_eq!(series.len(), 5);
    assert!(series.iter().all(|&v| v > 0.0));
}

#[test]
fn time_sampling_study_end_to_end() {
    let mut m = Machine::new(cfg(), Benchmark::Specjbb.workload(4, 42)).expect("machine");
    m.run_transactions(100).expect("warmup");
    let plan = RunPlan::new(60).with_runs(3);
    let study = sweep_checkpoints_with(&Executor::new(), &mut m, 3, 400, &plan).expect("sweep");
    assert_eq!(study.groups().len(), 3);
    let anova = study.anova().expect("anova");
    assert!(anova.f_statistic() >= 0.0);
    assert!((0.0..=1.0).contains(&anova.p_value()));
    // SPECjbb's heap growth should make time variability visible even on a
    // small machine; do not assert significance (short runs), just coherence.
    let _ = study.requires_time_sampling(0.05).expect("decision");
}

#[test]
fn two_way_anova_over_workload_and_configuration() {
    // The paper's §5.2 suggestion: when the system configuration may affect
    // variability, analyze workload x configuration combinations. Factor A:
    // workload (OLTP vs Apache); factor B: L2 associativity (2 vs 4); three
    // perturbed runs per cell.
    let cell = |b: Benchmark, ways: u32| -> Vec<f64> {
        let c = cfg().with_l2_associativity(ways);
        let plan = RunPlan::new(60).with_runs(3).with_warmup(100);
        run_space(&c, || b.workload(4, 42), &plan)
            .expect("space")
            .runtimes()
    };
    let cells = vec![
        vec![cell(Benchmark::Oltp, 2), cell(Benchmark::Oltp, 4)],
        vec![cell(Benchmark::Apache, 2), cell(Benchmark::Apache, 4)],
    ];
    let anova = mtvar::stats::infer::anova_two_way(&cells).expect("two-way anova");
    // The workload factor must dominate: OLTP and Apache transactions differ
    // in cost by integer factors, while associativity moves things by a few
    // percent.
    assert!(
        anova.factor_a.0 > anova.factor_b.0,
        "workload F ({:.1}) should exceed configuration F ({:.1})",
        anova.factor_a.0,
        anova.factor_b.0
    );
    assert!(
        anova.factor_a.1 < 0.05,
        "workload effect must be significant"
    );
    assert!((0.0..=1.0).contains(&anova.interaction.1));
}

#[test]
fn declarative_experiment_end_to_end() {
    use mtvar::core::experiment::{Arm, Experiment};

    let base = cfg();
    let exp = Experiment::new(
        "dram",
        vec![
            Arm {
                name: "80ns".into(),
                config: base.clone(),
            },
            Arm {
                name: "240ns".into(),
                config: base.clone().with_dram_latency_ns(240),
            },
        ],
        RunPlan::new(60).with_runs(4).with_warmup(60),
    )
    .expect("experiment");
    let report = exp.run(|| Benchmark::Oltp.workload(4, 42)).expect("run");
    assert_eq!(report.best_arm().name, "80ns", "3x DRAM latency must lose");
    let (arms, pairs) = report.to_table();
    assert_eq!(arms.row_count(), 2);
    assert_eq!(pairs.row_count(), 1);
    // CSV export round-trips through the report path.
    let csv = arms.to_csv();
    assert!(csv.lines().count() >= 3);
}

#[test]
fn budget_planner_consumes_pilot_covs() {
    use mtvar::core::budget::{plan_budget, CovModel};

    // Pilot on the real simulator at two lengths, measured and fitted by
    // the executor-driven helper.
    let model = CovModel::fit_by_pilot(
        &Executor::new(),
        &cfg(),
        || Benchmark::Oltp.workload(4, 42),
        &[40, 160],
        5,
        100,
    )
    .expect("fit");
    let plan = plan_budget(&model, 2_000, 40, 0.95).expect("plan");
    assert!(plan.runs >= 2);
    assert!(plan.runs as u64 * plan.transactions_per_run <= 2_000);
}

#[test]
fn all_benchmarks_run_on_the_paper_target() {
    for b in Benchmark::ALL {
        let mut m = Machine::new(
            MachineConfig::hpca2003().with_perturbation(4, 1),
            b.workload(16, 42),
        )
        .expect("machine");
        let txns = match b {
            Benchmark::Barnes | Benchmark::Ocean => 16,
            _ => 30,
        };
        let r = m.run_transactions(txns).expect("run");
        assert_eq!(r.transactions, txns, "{b} must commit {txns} transactions");
        assert!(r.cycles_per_transaction() > 0.0);
    }
}
