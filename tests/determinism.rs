//! Integration tests of the determinism contract that the whole methodology
//! rests on (§3.3): the simulator is a pure function of `(configuration,
//! workload seed, perturbation seed)`, and only the perturbation seed may
//! change an outcome from fixed initial conditions.
//!
//! The second half extends the contract to the parallel executor: a run
//! space is a pure function of `(configuration, workload, plan)` — never of
//! thread count, scheduling order, or cache state.

use std::sync::Arc;

use mtvar::core::runspace::{
    run_space, run_space_from_checkpoint, Executor, ProgressCounters, RunPlan,
};
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::workloads::Benchmark;

fn small_config() -> MachineConfig {
    MachineConfig::hpca2003().with_cpus(4)
}

#[test]
fn identical_configs_replay_identically() {
    let run = || {
        let mut m = Machine::new(
            small_config().with_perturbation(4, 99),
            Benchmark::Oltp.workload(4, 7),
        )
        .expect("machine");
        let r = m.run_transactions(120).expect("run");
        (r.elapsed(), r.commit_cycles.clone(), r.mem, r.sched)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "elapsed time must replay exactly");
    assert_eq!(a.1, b.1, "commit log must replay exactly");
    assert_eq!(a.2, b.2, "memory counters must replay exactly");
    assert_eq!(a.3, b.3, "scheduler counters must replay exactly");
}

#[test]
fn zero_perturbation_is_fully_deterministic_across_seeds() {
    // With max_ns = 0 the seed is irrelevant: the simulator of §3.2 is
    // deterministic.
    let run = |seed| {
        let mut m = Machine::new(
            small_config().with_perturbation(0, seed),
            Benchmark::Apache.workload(4, 3),
        )
        .expect("machine");
        m.run_transactions(150).expect("run").elapsed()
    };
    assert_eq!(run(1), run(2));
    assert_eq!(run(2), run(12345));
}

#[test]
fn perturbation_seeds_explore_distinct_paths() {
    let elapsed = |seed| {
        let mut m = Machine::new(
            small_config().with_perturbation(4, seed),
            Benchmark::Oltp.workload(4, 7),
        )
        .expect("machine");
        m.run_transactions(150).expect("run").elapsed()
    };
    let runs: Vec<u64> = (0..8).map(elapsed).collect();
    let distinct: std::collections::HashSet<u64> = runs.iter().copied().collect();
    assert!(
        distinct.len() >= 4,
        "8 perturbed runs should explore several paths, saw {distinct:?}"
    );
}

#[test]
fn workload_seed_changes_the_workload_not_the_contract() {
    let elapsed = |wseed| {
        let mut m = Machine::new(
            small_config().with_perturbation(0, 0),
            Benchmark::Oltp.workload(4, wseed),
        )
        .expect("machine");
        m.run_transactions(100).expect("run").elapsed()
    };
    // Different workload seeds give different (but individually
    // reproducible) runs.
    assert_ne!(elapsed(1), elapsed(2));
    assert_eq!(elapsed(1), elapsed(1));
}

#[test]
fn checkpoint_resume_is_bit_identical() {
    let mut m = Machine::new(
        small_config().with_perturbation(4, 5),
        Benchmark::Slashcode.workload(4, 11),
    )
    .expect("machine");
    m.run_transactions(40).expect("warmup");
    let ckpt = m.checkpoint();

    let mut a = ckpt.checkpoint();
    let mut b = ckpt.checkpoint();
    let ra = a.run_transactions(60).expect("a");
    let rb = b.run_transactions(60).expect("b");
    assert_eq!(ra.commit_cycles, rb.commit_cycles);
    assert_eq!(ra.mem, rb.mem);

    // And the original can continue too, identically.
    let rc = m.run_transactions(60).expect("c");
    assert_eq!(rc.commit_cycles, ra.commit_cycles);
}

#[test]
fn reseeded_checkpoint_diverges_but_reproduces() {
    let mut m = Machine::new(
        small_config().with_perturbation(4, 5),
        Benchmark::Oltp.workload(4, 11),
    )
    .expect("machine");
    m.run_transactions(40).expect("warmup");

    let r1 = m
        .with_perturbation_seed(77)
        .run_transactions(80)
        .expect("run");
    let r2 = m
        .with_perturbation_seed(77)
        .run_transactions(80)
        .expect("run");
    let r3 = m
        .with_perturbation_seed(78)
        .run_transactions(80)
        .expect("run");
    assert_eq!(r1.elapsed(), r2.elapsed(), "same seed must reproduce");
    assert_ne!(
        r1.commit_cycles, r3.commit_cycles,
        "different seeds should diverge from a warm checkpoint"
    );
}

// ---------------------------------------------------------------------------
// The parallel executor's determinism contract
// ---------------------------------------------------------------------------

#[test]
fn parallel_run_space_is_bit_identical_across_thread_counts() {
    let config = small_config().with_perturbation(4, 0);
    let plan = RunPlan::new(60).with_runs(8).with_warmup(40);
    let workload = || Benchmark::Oltp.workload(4, 7);

    // The sequential free function is the reference.
    let reference = run_space(&config, workload, &plan).expect("sequential space");
    for threads in [1, 2, 4, 9] {
        let space = Executor::with_threads(threads)
            .run_space(&config, workload, &plan)
            .expect("parallel space");
        assert_eq!(
            reference.results(),
            space.results(),
            "{threads}-thread executor must reproduce the sequential space bit-for-bit"
        );
    }
}

#[test]
fn parallel_checkpoint_space_is_bit_identical_across_thread_counts() {
    let mut m = Machine::new(
        small_config().with_perturbation(4, 5),
        Benchmark::Apache.workload(4, 3),
    )
    .expect("machine");
    m.run_transactions(50).expect("warmup");
    let plan = RunPlan::new(50).with_runs(6);

    let reference = run_space_from_checkpoint(&m, &plan).expect("sequential space");
    for threads in [2, 5] {
        let space = Executor::with_threads(threads)
            .run_space_from_checkpoint(&m, &plan)
            .expect("parallel space");
        assert_eq!(reference.results(), space.results());
    }
}

#[test]
fn cached_reinvocation_returns_identical_results_without_resimulating() {
    let config = small_config().with_perturbation(4, 0);
    let plan = RunPlan::new(50).with_runs(5);
    let workload = || Benchmark::Oltp.workload(4, 7);

    let progress = Arc::new(ProgressCounters::new());
    let executor = Executor::with_threads(4).with_progress(progress.clone());
    let first = executor.run_space(&config, workload, &plan).expect("first");
    assert_eq!(
        progress.completed(),
        5,
        "all runs simulate on first contact"
    );

    let second = executor
        .run_space(&config, workload, &plan)
        .expect("second");
    assert_eq!(
        first.results(),
        second.results(),
        "cache must return identical results"
    );
    assert_eq!(
        progress.completed(),
        5,
        "second invocation must not re-simulate"
    );
    assert_eq!(
        progress.cached(),
        5,
        "every run of the repeat must come from cache"
    );
}

#[test]
fn executor_distinguishes_workload_seeds_in_cache_and_results() {
    let config = small_config().with_perturbation(4, 0);
    let plan = RunPlan::new(40).with_runs(3);
    let executor = Executor::sequential();
    let a = executor
        .run_space(&config, || Benchmark::Oltp.workload(4, 7), &plan)
        .expect("a");
    let b = executor
        .run_space(&config, || Benchmark::Oltp.workload(4, 8), &plan)
        .expect("b");
    assert_ne!(
        a.runtimes(),
        b.runtimes(),
        "same benchmark with different workload seeds must not share cached runs"
    );
}
