//! Residency-tracker checkpoint coverage: the sharer-presence filter and
//! the home-node directory are derived state, rebuilt from cache contents
//! on restore rather than serialized. A machine checkpointed mid-run with a
//! warm tracker must therefore restore to one identical to a machine that
//! was never checkpointed — for every coherence protocol, snooping and
//! directory, at any node count — and the continued run must stay
//! digest-identical.

use mtvar::core::golden::run_digest;
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::sim::mem::{CoherenceProtocol, SnoopFilter};
use mtvar::workloads::profile::ProfiledWorkload;
use mtvar::workloads::Benchmark;

const CPUS: usize = 8;
const WORKLOAD_SEED: u64 = 42;
const WARMUP: u64 = 40;
const MEASURE: u64 = 40;

fn config(protocol: CoherenceProtocol) -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(CPUS)
        .with_protocol(protocol)
        .with_perturbation(4, 0x1DE7)
}

#[test]
fn restored_filter_matches_a_never_checkpointed_run_for_every_protocol() {
    for protocol in [
        CoherenceProtocol::Mosi,
        CoherenceProtocol::Mesi,
        CoherenceProtocol::Moesi,
    ] {
        let workload = Benchmark::Oltp.workload(CPUS, WORKLOAD_SEED);

        // Reference: never checkpointed.
        let mut straight = Machine::new(config(protocol), workload.clone()).unwrap();
        straight.run_transactions(WARMUP).expect("straight warmup");
        let want = straight
            .run_transactions(MEASURE)
            .expect("straight measure");

        // Checkpointed mid-run, with the filter warm from the warmup misses.
        let mut warmed = Machine::new(config(protocol), workload).unwrap();
        warmed.run_transactions(WARMUP).expect("warmup");
        assert_ne!(
            *warmed.memory().snoop_filter(),
            SnoopFilter::new(CPUS),
            "{protocol:?}: warmup must leave presence bits in the filter, \
             or this test proves nothing"
        );
        let snapshot = warmed.snapshot();
        let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");

        // The rebuilt filter must equal the live one bit-for-bit...
        assert_eq!(
            restored.memory().snoop_filter(),
            warmed.memory().snoop_filter(),
            "{protocol:?}: filter rebuilt on restore diverged from the live filter"
        );
        // ...and the continued run must be indistinguishable from never
        // having checkpointed: same statistics, same digest, same final
        // filter, same follow-up snapshot bytes.
        let got = restored
            .run_transactions(MEASURE)
            .expect("restored measure");
        assert_eq!(want, got, "{protocol:?}: continued run diverged");
        assert_eq!(run_digest(&want), run_digest(&got), "{protocol:?}");
        assert_eq!(
            restored.memory().snoop_filter(),
            straight.memory().snoop_filter(),
            "{protocol:?}: post-measurement filter diverged"
        );
        assert_eq!(
            restored.snapshot().fingerprint(),
            straight.snapshot().fingerprint(),
            "{protocol:?}: post-measurement state diverged"
        );
    }
}

#[test]
fn filter_stays_enabled_above_sixteen_cpus_and_checkpoints_round_trip() {
    // The presence vector was once a u16, capping the filter at 16 nodes;
    // the bitset widening keeps it engaged on any machine size. A 24-CPU
    // machine must run filtered, restore an identical filter from a
    // checkpoint, and continue bit-identically.
    let cfg = MachineConfig::hpca2003()
        .with_cpus(24)
        .with_perturbation(4, 0x1DE7);
    let workload = Benchmark::Oltp.workload(24, WORKLOAD_SEED);

    let mut machine = Machine::new(cfg, workload).unwrap();
    machine.run_transactions(WARMUP).expect("warmup");
    assert!(
        machine.memory().snoop_filter().enabled(),
        "the widened filter must stay engaged beyond 16 CPUs"
    );
    assert_ne!(
        *machine.memory().snoop_filter(),
        SnoopFilter::new(24),
        "warmup must leave presence bits in the filter"
    );
    let snapshot = machine.snapshot();
    let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");
    assert_eq!(
        restored.memory().snoop_filter(),
        machine.memory().snoop_filter(),
        "filter rebuilt on restore diverged from the live filter"
    );
    let want = machine.run_transactions(MEASURE).expect("straight");
    let got = restored.run_transactions(MEASURE).expect("restored");
    assert_eq!(
        want, got,
        "wide filtered machine diverged across a checkpoint"
    );
}

#[test]
fn restored_directory_matches_a_never_checkpointed_run() {
    // Directory machines track residency in the exact per-block directory
    // instead of the filter; it is derived state under the same contract —
    // rebuilt from restored cache contents, never serialized — and the
    // continued run must stay identical.
    for protocol in [
        CoherenceProtocol::DirMosi,
        CoherenceProtocol::DirMesi,
        CoherenceProtocol::DirMoesi,
    ] {
        let workload = Benchmark::Oltp.workload(CPUS, WORKLOAD_SEED);

        let mut straight = Machine::new(config(protocol), workload.clone()).unwrap();
        straight.run_transactions(WARMUP).expect("straight warmup");
        let want = straight
            .run_transactions(MEASURE)
            .expect("straight measure");

        let mut warmed = Machine::new(config(protocol), workload).unwrap();
        warmed.run_transactions(WARMUP).expect("warmup");
        let dir = warmed.memory().directory().expect("directory protocol");
        assert!(
            !warmed.memory().snoop_filter().enabled(),
            "{protocol:?}: directory machines must not also run the filter"
        );
        assert!(
            dir.tracked_blocks() > 0,
            "{protocol:?}: warmup must populate the directory"
        );
        let snapshot = warmed.snapshot();
        let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");
        assert_eq!(
            restored.memory().directory(),
            warmed.memory().directory(),
            "{protocol:?}: directory rebuilt on restore diverged from the live one"
        );
        let got = restored
            .run_transactions(MEASURE)
            .expect("restored measure");
        assert_eq!(want, got, "{protocol:?}: continued run diverged");
        assert_eq!(
            restored.snapshot().fingerprint(),
            straight.snapshot().fingerprint(),
            "{protocol:?}: post-measurement state diverged"
        );
    }
}
