//! Snoop-filter checkpoint coverage: the sharer-presence filter is derived
//! state, rebuilt from cache contents on restore rather than serialized. A
//! machine checkpointed mid-run with a warm filter must therefore restore to
//! a filter identical to one that was never checkpointed — for every
//! coherence protocol — and the continued run must stay digest-identical.

use mtvar::core::golden::run_digest;
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::sim::mem::{CoherenceProtocol, SnoopFilter};
use mtvar::workloads::profile::ProfiledWorkload;
use mtvar::workloads::Benchmark;

const CPUS: usize = 8;
const WORKLOAD_SEED: u64 = 42;
const WARMUP: u64 = 40;
const MEASURE: u64 = 40;

fn config(protocol: CoherenceProtocol) -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(CPUS)
        .with_protocol(protocol)
        .with_perturbation(4, 0x1DE7)
}

#[test]
fn restored_filter_matches_a_never_checkpointed_run_for_every_protocol() {
    for protocol in [
        CoherenceProtocol::Mosi,
        CoherenceProtocol::Mesi,
        CoherenceProtocol::Moesi,
    ] {
        let workload = Benchmark::Oltp.workload(CPUS, WORKLOAD_SEED);

        // Reference: never checkpointed.
        let mut straight = Machine::new(config(protocol), workload.clone()).unwrap();
        straight.run_transactions(WARMUP).expect("straight warmup");
        let want = straight
            .run_transactions(MEASURE)
            .expect("straight measure");

        // Checkpointed mid-run, with the filter warm from the warmup misses.
        let mut warmed = Machine::new(config(protocol), workload).unwrap();
        warmed.run_transactions(WARMUP).expect("warmup");
        assert_ne!(
            *warmed.memory().snoop_filter(),
            SnoopFilter::new(CPUS),
            "{protocol:?}: warmup must leave presence bits in the filter, \
             or this test proves nothing"
        );
        let snapshot = warmed.snapshot();
        let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");

        // The rebuilt filter must equal the live one bit-for-bit...
        assert_eq!(
            restored.memory().snoop_filter(),
            warmed.memory().snoop_filter(),
            "{protocol:?}: filter rebuilt on restore diverged from the live filter"
        );
        // ...and the continued run must be indistinguishable from never
        // having checkpointed: same statistics, same digest, same final
        // filter, same follow-up snapshot bytes.
        let got = restored
            .run_transactions(MEASURE)
            .expect("restored measure");
        assert_eq!(want, got, "{protocol:?}: continued run diverged");
        assert_eq!(run_digest(&want), run_digest(&got), "{protocol:?}");
        assert_eq!(
            restored.memory().snoop_filter(),
            straight.memory().snoop_filter(),
            "{protocol:?}: post-measurement filter diverged"
        );
        assert_eq!(
            restored.snapshot().fingerprint(),
            straight.snapshot().fingerprint(),
            "{protocol:?}: post-measurement state diverged"
        );
    }
}

#[test]
fn filter_disables_above_sixteen_cpus_and_checkpoints_still_round_trip() {
    // 17+ CPUs exceed the u16 presence vector; the memory system must fall
    // back to full broadcast with a disabled filter, and snapshot/restore
    // must keep working (the rebuild is a no-op on a disabled filter).
    let cfg = MachineConfig::hpca2003()
        .with_cpus(24)
        .with_perturbation(4, 0x1DE7);
    let workload = Benchmark::Oltp.workload(24, WORKLOAD_SEED);

    let mut machine = Machine::new(cfg, workload).unwrap();
    machine.run_transactions(WARMUP).expect("warmup");
    assert!(
        !machine.memory().snoop_filter().enabled(),
        "filter must disable itself beyond 16 CPUs"
    );
    let snapshot = machine.snapshot();
    let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");
    assert!(!restored.memory().snoop_filter().enabled());
    let want = machine.run_transactions(MEASURE).expect("straight");
    let got = restored.run_transactions(MEASURE).expect("restored");
    assert_eq!(want, got, "broadcast fallback diverged across a checkpoint");
}
