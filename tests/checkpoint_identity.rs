//! The checkpoint subsystem's bit-identity gate, run by `scripts/verify.sh`
//! with the `invariant-monitor` feature both off and on:
//!
//! 1. **Snapshot/restore transparency** — for every benchmark, running
//!    `WARMUP + MEASURE` transactions straight must equal snapshotting at
//!    `WARMUP`, restoring into a fresh machine, and continuing: identical
//!    [`RunResult`]s, identical digests, and identical follow-up snapshots.
//! 2. **Executor-level identity** — shared-warmup sweeps are bit-identical
//!    across thread counts, and attaching a [`CheckpointStore`] changes the
//!    work done but never the statistics.
//! 3. **Crash safety** — a truncated or bit-flipped spill file is detected
//!    by content fingerprint and falls back to re-simulation with the same
//!    results.
//!
//! [`RunResult`]: mtvar::sim::stats::RunResult

use std::sync::Arc;

use mtvar::core::checkpoint::CheckpointStore;
use mtvar::core::golden::run_digest;
use mtvar::core::runspace::{Executor, RunPlan};
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::workloads::profile::ProfiledWorkload;
use mtvar::workloads::Benchmark;

const CPUS: usize = 4;
const WORKLOAD_SEED: u64 = 42;
const WARMUP: u64 = 10;
const MEASURE: u64 = 30;

fn config() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(CPUS)
        .with_perturbation(4, 0x1DE7)
}

#[test]
fn snapshot_restore_is_bit_identical_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let workload = bench.workload(CPUS, WORKLOAD_SEED);

        let mut straight = Machine::new(config(), workload.clone()).unwrap();
        straight.run_transactions(WARMUP).expect("straight warmup");
        let want = straight
            .run_transactions(MEASURE)
            .expect("straight measure");

        let mut warmed = Machine::new(config(), workload).unwrap();
        warmed.run_transactions(WARMUP).expect("warmup");
        let snapshot = warmed.snapshot();
        let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");
        assert_eq!(
            restored.snapshot().fingerprint(),
            snapshot.fingerprint(),
            "{}: restore must reproduce the snapshot byte-for-byte",
            bench.name()
        );
        let got = restored
            .run_transactions(MEASURE)
            .expect("restored measure");

        assert_eq!(
            want,
            got,
            "{}: a run continued from a restored snapshot diverged",
            bench.name()
        );
        assert_eq!(run_digest(&want), run_digest(&got), "{}", bench.name());
        // The machines remain interchangeable after the measurement too.
        assert_eq!(
            straight.snapshot().fingerprint(),
            restored.snapshot().fingerprint(),
            "{}: post-measurement state diverged",
            bench.name()
        );
    }
}

/// The scaling gate: a warmed 64-CPU directory-coherence machine must
/// checkpoint and restore bit-identically — snapshot fingerprints equal,
/// continued runs equal — and executor sweeps over the same configuration
/// must not depend on the thread count. The directory's per-home occupancy
/// registers ride in the snapshot (unlike the rebuilt-on-restore sharer
/// sets), so this exercises the conditional encoding path end to end.
#[test]
fn warmed_64_cpu_directory_machine_restores_bit_identically() {
    const DIR_CPUS: usize = 64;
    let cfg = MachineConfig::hpca2003()
        .with_cpus(DIR_CPUS)
        .with_directory_coherence()
        .with_perturbation(4, 0x1DE7);
    let workload = Benchmark::Oltp.workload(DIR_CPUS, WORKLOAD_SEED);

    let mut straight = Machine::new(cfg.clone(), workload.clone()).unwrap();
    straight.run_transactions(WARMUP).expect("straight warmup");
    let want = straight
        .run_transactions(MEASURE)
        .expect("straight measure");

    let mut warmed = Machine::new(cfg.clone(), workload).unwrap();
    warmed.run_transactions(WARMUP).expect("warmup");
    let snapshot = warmed.snapshot();
    let mut restored: Machine<ProfiledWorkload> = Machine::restore(&snapshot).expect("restore");
    assert_eq!(
        restored.snapshot().fingerprint(),
        snapshot.fingerprint(),
        "restore must reproduce the 64-CPU directory snapshot byte-for-byte"
    );
    let got = restored
        .run_transactions(MEASURE)
        .expect("restored measure");
    assert_eq!(want, got, "continued 64-CPU directory run diverged");
    assert_eq!(
        straight.snapshot().fingerprint(),
        restored.snapshot().fingerprint(),
        "post-measurement 64-CPU directory state diverged"
    );

    // Executor-level: the same configuration swept with 1 and 4 worker
    // threads must produce identical statistics.
    let plan = RunPlan::new(20).with_runs(2).with_warmup(WARMUP);
    let make = move || Benchmark::Oltp.workload(DIR_CPUS, WORKLOAD_SEED);
    let reference = Executor::sequential()
        .without_cache()
        .run_space(&cfg, make, &plan)
        .unwrap();
    let parallel = Executor::with_threads(4)
        .without_cache()
        .run_space(&cfg, make, &plan)
        .unwrap();
    assert_eq!(
        reference, parallel,
        "64-CPU directory sweep depends on executor thread count"
    );
}

/// The parallel-decode gate: restoring one snapshot with 1, 2, 4, and 8
/// decode workers must produce byte-identical machines — equal re-snapshot
/// payload fingerprints, equal continued-run statistics and digests, and
/// equal post-measurement fingerprints — across the snooping and directory
/// protocols at the paper's 16 CPUs and the scaled 64. The snoop filter
/// and directory sharer sets are rebuilt from per-node residency seeds
/// computed on the workers, so this pins the derived state too, not just
/// the serialized bytes.
#[test]
fn parallel_decode_thread_counts_are_bit_identical() {
    for (cpus, directory) in [(16, false), (64, false), (16, true), (64, true)] {
        let mut cfg = MachineConfig::hpca2003()
            .with_cpus(cpus)
            .with_perturbation(4, 0x1DE7);
        if directory {
            cfg = cfg.with_directory_coherence();
        }
        let label = format!(
            "{cpus} CPUs, {} coherence",
            if directory { "directory" } else { "snooping" }
        );
        let mut warmed = Machine::new(cfg, Benchmark::Oltp.workload(cpus, WORKLOAD_SEED)).unwrap();
        warmed.run_transactions(WARMUP).expect("warmup");
        let snapshot = warmed.snapshot();
        drop(warmed);

        let mut reference: Machine<ProfiledWorkload> =
            Machine::restore(&snapshot).expect("single-threaded restore");
        assert_eq!(
            reference.snapshot().fingerprint(),
            snapshot.fingerprint(),
            "{label}: single-threaded restore must reproduce the snapshot"
        );
        let want = reference.run_transactions(MEASURE).expect("measure");
        let want_fp = reference.snapshot().fingerprint();

        for threads in [2, 4, 8] {
            let mut decoded: Machine<ProfiledWorkload> =
                Machine::restore_with_threads(&snapshot, threads).expect("multi-threaded restore");
            assert_eq!(
                decoded.snapshot().fingerprint(),
                snapshot.fingerprint(),
                "{label}: {threads}-thread decode changed the re-encoded payload"
            );
            let got = decoded.run_transactions(MEASURE).expect("measure");
            assert_eq!(
                want, got,
                "{label}: a run continued from a {threads}-thread decode diverged"
            );
            assert_eq!(run_digest(&want), run_digest(&got), "{label}: {threads}");
            assert_eq!(
                decoded.snapshot().fingerprint(),
                want_fp,
                "{label}: post-measurement state diverged after {threads}-thread decode"
            );
        }
    }
}

#[test]
fn shared_warmup_sweeps_are_thread_count_and_store_invariant() {
    let plan = RunPlan::new(MEASURE).with_runs(4).with_warmup(WARMUP);
    for bench in [Benchmark::Oltp, Benchmark::Barnes] {
        let make = move || bench.workload(CPUS, WORKLOAD_SEED);
        let reference = Executor::sequential()
            .without_cache()
            .run_space(&config(), make, &plan)
            .unwrap();
        for threads in [1, 4] {
            let store = Arc::new(CheckpointStore::new());
            let with_store = Executor::with_threads(threads)
                .without_cache()
                .with_checkpoint_store(store.clone())
                .run_space(&config(), make, &plan)
                .unwrap();
            assert_eq!(
                reference,
                with_store,
                "{}: {threads}-thread store-backed sweep diverged",
                bench.name()
            );
            assert_eq!(store.len(), 1, "{}", bench.name());
        }
    }
}

#[test]
fn corrupt_spill_files_fall_back_to_resimulation() {
    let dir = std::env::temp_dir().join(format!("mtvar-ckpt-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let make = || Benchmark::Oltp.workload(CPUS, WORKLOAD_SEED);
    let plan = RunPlan::new(MEASURE).with_runs(3).with_warmup(WARMUP);

    let store = Arc::new(CheckpointStore::new().with_disk_spill(&dir));
    let exec = Executor::sequential()
        .without_cache()
        .with_checkpoint_store(store.clone());
    let want = exec.run_space(&config(), make, &plan).unwrap();

    // Truncate every spilled snapshot mid-payload, as an interrupted write
    // would have (without the fsync-and-rename protocol).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "expected at least one spilled snapshot");

    // A fresh store over the same directory sees only corrupt files: it must
    // delete them, warm from scratch, and produce identical statistics.
    let fresh = Arc::new(CheckpointStore::new().with_disk_spill(&dir));
    let key_count_before = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(key_count_before, corrupted);
    let got = Executor::sequential()
        .without_cache()
        .with_checkpoint_store(fresh.clone())
        .run_space(&config(), make, &plan)
        .unwrap();
    assert_eq!(want, got, "corrupt spill changed statistics");

    // And the re-simulated snapshot was re-spilled, replacing the corpse.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        names.iter().all(|n| n.ends_with(".ckpt")),
        "unexpected files in spill dir: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
