//! Golden-run regression harness: every benchmark is simulated under one
//! pinned configuration and its [`RunResult`] digest compared against
//! `tests/golden/benchmarks.txt`. Any unintended behaviour change anywhere
//! in the stack — workload generation, processor timing, coherence,
//! scheduling, perturbation — shifts at least one digest and fails here.
//!
//! The runs execute with invariant checking enabled, so this harness also
//! proves the coherence/inclusion/conservation invariants hold across every
//! benchmark's full warmup + measurement, and that enabling the (read-only)
//! monitor does not disturb the digests.
//!
//! Re-blessing after an *intended* change:
//!
//! ```text
//! MTVAR_BLESS=1 cargo test --test golden_runs
//! ```
//!
//! then review and commit the diff of `tests/golden/benchmarks.txt` together
//! with the change that caused it.
//!
//! [`RunResult`]: mtvar::sim::stats::RunResult

use std::fs;
use std::path::PathBuf;

use mtvar::core::golden::{run_digest, GoldenFile};
use mtvar::sim::config::MachineConfig;
use mtvar::sim::machine::Machine;
use mtvar::sim::proc::{OooConfig, ProcessorConfig};
use mtvar::workloads::Benchmark;

const CPUS: usize = 4;
const WORKLOAD_SEED: u64 = 42;
const PERTURBATION_SEED: u64 = 0x607D;
const NOISE_SEED: u64 = 0x5EED;
const WARMUP_TXNS: u64 = 10;
const MEASURE_TXNS: u64 = 40;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("benchmarks.txt")
}

fn golden_config() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(CPUS)
        .with_perturbation(4, PERTURBATION_SEED)
        .with_invariant_checks()
}

/// The noise-enabled variant: the paper's E5000-like "real machine" with its
/// environmental-noise model seeded, pinned to the same CPU count and
/// perturbation as the clean configuration. Digesting the benchmarks under
/// it as well locks down the noise model's behaviour, which the clean
/// configuration never exercises.
fn e5000_config() -> MachineConfig {
    MachineConfig::e5000_like(NOISE_SEED)
        .with_cpus(CPUS)
        .with_perturbation(4, PERTURBATION_SEED)
        .with_invariant_checks()
}

/// The scaling configuration the paper never had: a 64-node machine under
/// directory coherence (same per-node hierarchy as the paper's target),
/// with the workload's threads spread across all 64 CPUs. Digesting every
/// benchmark under it locks down the directory transport's protocol
/// decisions, timing, and residency bookkeeping at a scale where the
/// snooping bus never operated.
const DIR64_CPUS: usize = 64;

fn dir64_config() -> MachineConfig {
    MachineConfig::hpca2003()
        .with_cpus(DIR64_CPUS)
        .with_directory_coherence()
        .with_perturbation(4, PERTURBATION_SEED)
        .with_invariant_checks()
}

/// Runs one benchmark under `config` (a `cpus`-thread workload on a `cpus`
/// machine) and returns its digest, asserting along the way that the
/// invariant monitor stayed clean.
fn digest_benchmark_under_cpus(config: MachineConfig, bench: Benchmark, cpus: usize) -> u64 {
    let mut m = Machine::new(config, bench.workload(cpus, WORKLOAD_SEED))
        .expect("golden config must build");
    m.run_transactions(WARMUP_TXNS).expect("warmup");
    let result = m.run_transactions(MEASURE_TXNS).expect("measurement");
    assert!(
        m.invariant_violations().is_empty(),
        "{}: invariant violations during golden run: {:?}",
        bench.name(),
        m.invariant_violations(),
    );
    run_digest(&result)
}

fn digest_benchmark_under(config: MachineConfig, bench: Benchmark) -> u64 {
    digest_benchmark_under_cpus(config, bench, CPUS)
}

fn digest_benchmark(bench: Benchmark) -> u64 {
    digest_benchmark_under(golden_config(), bench)
}

/// The out-of-order processor model under the clean configuration: same
/// CPUs, perturbation and monitoring, but TFsim-like OoO cores instead of
/// the in-order default. Digesting every benchmark under it locks down the
/// OoO pipeline's timing behaviour, which the other two variants never
/// exercise.
fn ooo_config() -> MachineConfig {
    golden_config().with_processor(ProcessorConfig::OutOfOrder(OooConfig::tfsim_default()))
}

#[test]
fn all_benchmarks_match_golden_digests() {
    let mut current = GoldenFile::new();
    for bench in Benchmark::ALL {
        current.set(bench.name(), digest_benchmark(bench));
        current.set(
            &format!("{}+e5000", bench.name()),
            digest_benchmark_under(e5000_config(), bench),
        );
        current.set(
            &format!("{}+ooo", bench.name()),
            digest_benchmark_under(ooo_config(), bench),
        );
        current.set(
            &format!("{}+dir64", bench.name()),
            digest_benchmark_under_cpus(dir64_config(), bench, DIR64_CPUS),
        );
    }

    let path = golden_path();
    if std::env::var_os("MTVAR_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, current.render()).expect("write golden file");
        eprintln!("blessed {} digests into {}", current.len(), path.display());
        return;
    }

    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `MTVAR_BLESS=1 cargo test --test golden_runs` to create it",
            path.display()
        )
    });
    let golden = GoldenFile::parse(&text).expect("golden file must parse");

    let mut mismatches = Vec::new();
    for (name, digest) in current.iter() {
        match golden.get(name) {
            Some(expected) if expected == digest => {}
            Some(expected) => mismatches.push(format!(
                "{name}: digest {digest:#018x} != golden {expected:#018x}"
            )),
            None => mismatches.push(format!("{name}: missing from golden file")),
        }
    }
    for (name, _) in golden.iter() {
        if current.get(name).is_none() {
            mismatches.push(format!("{name}: in golden file but no such benchmark"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden digests diverged:\n  {}\n\
         If the behaviour change is intended, re-bless with \
         `MTVAR_BLESS=1 cargo test --test golden_runs` and commit the diff.",
        mismatches.join("\n  "),
    );
}

#[test]
fn golden_digests_are_stable_across_repeat_runs() {
    // The digest itself must be a pure function of the pinned inputs;
    // otherwise the golden comparison would flake rather than gate.
    let bench = Benchmark::Barnes;
    assert_eq!(digest_benchmark(bench), digest_benchmark(bench));
}
